"""Traffic benchmarks: saturation knee, overload SLOs, pool parity.

Two tiers mirror the other bench harnesses:

* ``traffic_smoke`` — a seconds-long run asserting the *deterministic*
  properties (virtual-replay shedding, SLO adherence, conservation) plus
  one real two-worker pool parity pass across a hot reload;
* ``traffic`` — the fuller sweep behind ``python -m repro.cli
  traffic-bench``, which also records real closed-loop pool capacity per
  worker count.

Both append to ``BENCH_serving.json`` under ``benchmarks.traffic_bench``.
The capacity rows are honest about the container: on a 1-CPU box N
workers time-slice one core, so worker scaling shows up in the *virtual*
knee (which models N servers), not in wall-clock QPS.

Run::

    PYTHONPATH=src python -m pytest benchmarks/serving -m traffic_smoke -q
    PYTHONPATH=src python -m pytest benchmarks/serving -m traffic -q -s
"""

from __future__ import annotations

import pathlib

import pytest

from repro.traffic import fork_available
from repro.traffic.loadbench import (
    render_traffic_bench,
    run_traffic_bench,
    write_traffic_record,
)

BENCH_SERVING_PATH = (
    pathlib.Path(__file__).resolve().parent.parent.parent
    / "BENCH_serving.json"
)


def _run_and_record(worker_counts, n_requests):
    record = run_traffic_bench(
        worker_counts=worker_counts, n_requests=n_requests,
    )
    print("\n" + render_traffic_bench(record))
    write_traffic_record(record, BENCH_SERVING_PATH)

    saturation = record["saturation"]
    assert saturation["knee_qps"] is not None, "no saturation knee found"
    assert all(point["conserved"] for point in saturation["curve"])
    assert any(point["shed_fraction"] > 0 for point in saturation["curve"]), (
        "sweep never reached overload — widen the load factors"
    )

    overload = record["overload"]
    assert overload is not None
    assert overload["deterministic"], "overload shedding was not replayable"
    assert overload["conserved"]
    assert overload["shed_fraction"] > 0.05
    assert overload["within_slo"], (
        f"accepted p99 {overload['p99_ms']:.2f} ms blew the "
        f"{overload['slo_p99_ms']:.0f} ms SLO under overload"
    )

    if fork_available():
        assert record["parity"]["ok"], record["parity"]
        assert record["parity"]["generations"] == [1, 2]
    return record


@pytest.mark.traffic_smoke
def test_traffic_smoke():
    """Tiny trace: knee + overload + one real hot-reload parity pass."""
    record = _run_and_record(worker_counts=(2,), n_requests=400)
    assert record["parity"]["n_workers"] == 2 or not fork_available()


@pytest.mark.traffic
def test_traffic_sweep():
    """Fuller sweep with real capacity rows for 1 and 2 workers."""
    record = _run_and_record(worker_counts=(1, 2), n_requests=800)
    if fork_available():
        for key, entry in record["capacity"].items():
            assert entry["qps"] > 0, f"pool produced nothing at {key}"
    # The virtual knee must sit inside the swept range, not at its edge.
    curve = record["saturation"]["curve"]
    assert record["saturation"]["knee_qps"] <= curve[-1]["offered_qps"]
