"""Serving throughput/latency benchmarks (train → publish → replay).

Two tiers mirror the perf harness:

* ``serving_smoke`` — a seconds-long replay that keeps the harness alive in
  CI (the perf-smoke job runs it on every push);
* ``serving`` — the fuller sweep behind ``python -m repro.cli serve-bench``.

Both append their measurements to ``BENCH_serving.json`` at the repo root
and hard-fail if the serving path stops being bit-identical to offline
scoring.

Run::

    PYTHONPATH=src python -m pytest benchmarks/serving -m serving_smoke -q
    PYTHONPATH=src python -m pytest benchmarks/serving -m serving -q -s
"""

from __future__ import annotations

import pathlib

import pytest

from repro.serving.bench import (
    render_serve_bench,
    run_serve_bench,
    write_bench_record,
)

BENCH_SERVING_PATH = (
    pathlib.Path(__file__).resolve().parent.parent.parent / "BENCH_serving.json"
)


def _run_and_record(batch_sizes, n_requests):
    record = run_serve_bench(batch_sizes=batch_sizes, n_requests=n_requests)
    print("\n" + render_serve_bench(record))
    write_bench_record(record, BENCH_SERVING_PATH)
    for key, entry in record["settings"].items():
        assert entry["parity"], f"serving/offline parity failed at {key}"
        assert entry["qps"] > 0
    return record


@pytest.mark.serving_smoke
def test_serving_smoke():
    """Tiny replay: the full train→publish→replay→reload path stays alive."""
    record = _run_and_record(batch_sizes=(1, 8), n_requests=300)
    assert set(record["settings"]) == {"bs=1", "bs=8"}


@pytest.mark.serving
def test_serving_sweep():
    """The full sweep: micro-batching must beat single-row serving."""
    record = _run_and_record(batch_sizes=(1, 8, 32), n_requests=2000)
    single = record["settings"]["bs=1"]["qps"]
    batched = record["settings"]["bs=32"]["qps"]
    assert batched > single, (
        f"micro-batching regressed: bs=32 at {batched:.0f} qps vs "
        f"bs=1 at {single:.0f} qps"
    )
