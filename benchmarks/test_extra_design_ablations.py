"""Extra: ablations of this reproduction's own design choices.

DESIGN.md calls out two knobs the paper leaves implicit and this
implementation makes explicit; each gets an ablation here:

* ``dn_rounds`` — DN epochs per framework epoch (compensates the β-damped
  outer step; 1 = the literal Algorithm 1 reading);
* ``inner_steps`` — bounded vs full per-domain passes in the inner loop.
"""

import numpy as np
from conftest import emit

from repro.core import MAMDR, TrainConfig
from repro.data import taobao10_sim
from repro.metrics import evaluate_bank
from repro.models import build_model
from repro.utils.tables import format_table

VARIANTS = (
    ("dn_rounds=1 (literal Alg. 1)", {"dn_rounds": 1}),
    ("dn_rounds=2 (default)", {"dn_rounds": 2}),
    ("inner_steps=4 (capped pass)", {"inner_steps": 4}),
    ("inner_steps=None (full pass)", {"inner_steps": None}),
)


def run_ablations(seeds=(0, 1)):
    rows = []
    for label, overrides in VARIANTS:
        aucs = []
        for seed in seeds:
            dataset = taobao10_sim(scale=0.8, seed=seed)
            config = TrainConfig().updated(**overrides)
            model = build_model("mlp", dataset, seed=seed)
            bank = MAMDR().fit(model, dataset, config, seed=seed)
            aucs.append(evaluate_bank(bank, dataset).mean_auc)
        rows.append([label, float(np.mean(aucs))])
    return rows


def test_extra_design_ablations(benchmark, results_dir):
    rows = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    text = format_table(
        ["Variant", "AUC"], rows,
        title="Extra: design-choice ablations for MAMDR (Taobao-10)",
    )
    emit(results_dir, "extra_design_ablations", text)

    aucs = {label: auc for label, auc in rows}
    assert all(0.5 < auc <= 1.0 for auc in aucs.values())
