"""Distributed MAMDR on the simulated PS-Worker cluster (Section IV-E).

Spins up a 4-worker in-process cluster with the static/dynamic embedding
cache, trains on an industry-style many-domain dataset, and prints the
synchronization statistics the cache design is about: embedding-row pulls
avoided by the dynamic cache, and rows synchronized vs table size.

Run:  python examples/distributed_training.py
"""

from repro.core import TrainConfig
from repro.data import amazon6_sim
from repro.distributed import SimulatedCluster
from repro.metrics import evaluate_bank
from repro.models import build_model


def main():
    dataset = amazon6_sim(scale=1.0, seed=0)
    config = TrainConfig(epochs=6)

    cluster = SimulatedCluster(n_workers=4, mode="async")
    print("Training MLP+MAMDR on a simulated 4-worker PS cluster ...")
    bank = cluster.fit(
        lambda worker_id: build_model("mlp", dataset, seed=0),
        dataset, config, seed=0, use_dr=True,
    )
    report = evaluate_bank(bank, dataset, method="distributed MAMDR")
    print(f"mean test AUC: {report.mean_auc:.4f}\n")

    stats = cluster.stats()
    print(f"parameter-server version (total pushes): {stats['ps_version']}")
    print(f"embedding rows pulled from PS: {stats['ps_pulls']['embedding_rows']}")
    print(f"embedding rows pushed to PS:   {stats['ps_pushes']['embedding_rows']}")
    table_rows = dataset.n_users + dataset.n_items
    pushed = stats["ps_pushes"]["embedding_rows"]
    full_sync = table_rows * stats["ps_version"]
    print(f"rows synchronized vs naive full-table sync: "
          f"{pushed} / {full_sync} ({100 * pushed / full_sync:.1f}%)")
    print("\nper-worker cache hit rates:")
    for worker_id, tables in stats["workers"].items():
        for table, cache_stats in tables.items():
            print(f"  worker {worker_id} {table}: "
                  f"hit rate {cache_stats['hit_rate']:.2f} "
                  f"({cache_stats['hits']} hits / {cache_stats['misses']} misses)")


if __name__ == "__main__":
    main()
