"""Distributed MAMDR on the simulated PS-Worker cluster (Section IV-E).

Spins up a 4-worker in-process cluster with the static/dynamic embedding
cache, trains on an industry-style many-domain dataset, and prints the
synchronization statistics the cache design is about: embedding-row pulls
avoided by the dynamic cache, and rows synchronized vs table size.  A
second run replays the same training under a seeded fault plan — dropped
messages, duplicated pushes and a mid-epoch worker crash — to show the
recovery machinery (retries, server-side dedup, eviction + re-sharding).

Run:  python examples/distributed_training.py
"""

from repro.core import TrainConfig
from repro.data import amazon6_sim
from repro.distributed import FaultPlan, SimulatedCluster
from repro.metrics import evaluate_bank
from repro.models import build_model


def main():
    dataset = amazon6_sim(scale=1.0, seed=0)
    config = TrainConfig(epochs=6)

    cluster = SimulatedCluster(n_workers=4, mode="async")
    print("Training MLP+MAMDR on a simulated 4-worker PS cluster ...")
    bank = cluster.run(
        lambda worker_id: build_model("mlp", dataset, seed=0),
        dataset, config, seed=0, use_dr=True,
    )
    report = evaluate_bank(bank, dataset, method="distributed MAMDR")
    print(f"mean test AUC: {report.mean_auc:.4f}\n")

    stats = cluster.stats()
    print(f"parameter-server version (total pushes): {stats['ps_version']}")
    print(f"embedding rows pulled from PS: {stats['ps_pulls']['embedding_rows']}")
    print(f"embedding rows pushed to PS:   {stats['ps_pushes']['embedding_rows']}")
    table_rows = dataset.n_users + dataset.n_items
    pushed = stats["ps_pushes"]["embedding_rows"]
    full_sync = table_rows * stats["ps_version"]
    print(f"rows synchronized vs naive full-table sync: "
          f"{pushed} / {full_sync} ({100 * pushed / full_sync:.1f}%)")
    print("\nper-worker cache hit rates:")
    for worker_id, tables in stats["workers"].items():
        for table, cache_stats in tables.items():
            print(f"  worker {worker_id} {table}: "
                  f"hit rate {cache_stats['hit_rate']:.2f} "
                  f"({cache_stats['hits']} hits / {cache_stats['misses']} misses)")

    print("\nReplaying the run under a seeded fault plan ...")
    plan = FaultPlan(seed=7, drop_rate=0.05, timeout_rate=0.05,
                     duplicate_rate=0.10, crash_after={1: 40})
    chaos = SimulatedCluster(n_workers=4, mode="async", fault_plan=plan,
                             heartbeat_timeout=1)
    bank_chaos = chaos.run(
        lambda worker_id: build_model("mlp", dataset, seed=0),
        dataset, config, seed=0, use_dr=True,
    )
    chaos_report = evaluate_bank(bank_chaos, dataset, method="chaos MAMDR")
    cstats = chaos.stats()
    retried = sum(c["retried"] for c in cstats["transport"].values())
    print(f"mean test AUC under faults: {chaos_report.mean_auc:.4f} "
          f"(no-fault: {report.mean_auc:.4f})")
    print(f"crashes: {[c['worker'] for c in cstats['crashes']]}, "
          f"evictions: {[e['worker'] for e in cstats['evictions']]}")
    print(f"retried deliveries: {retried}, "
          f"duplicate pushes absorbed by dedup: {cstats['ps_dedup_hits']}")


if __name__ == "__main__":
    main()
