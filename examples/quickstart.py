"""Quickstart: train MLP+MAMDR on a multi-domain benchmark.

Builds the Amazon-6 analogue dataset, trains a plain MLP with the MAMDR
learning framework (Domain Negotiation for the shared parameters + Domain
Regularization for the per-domain deltas), and prints per-domain test AUC
against a plain alternate-training baseline.

Run:  python examples/quickstart.py
"""

from repro.core import MAMDR, TrainConfig
from repro.data import amazon6_sim
from repro.frameworks import Alternate
from repro.metrics import evaluate_bank
from repro.models import build_model
from repro.utils.tables import format_table


def main():
    print("Generating the Amazon-6 benchmark analogue ...")
    dataset = amazon6_sim(scale=1.0, seed=0)
    config = TrainConfig(epochs=8)

    print("Training MLP with alternate training (baseline) ...")
    baseline_model = build_model("mlp", dataset, seed=0)
    baseline = evaluate_bank(
        Alternate().fit(baseline_model, dataset, config, seed=0),
        dataset, method="MLP (alternate)",
    )

    print("Training MLP with MAMDR (DN + DR) ...")
    mamdr_model = build_model("mlp", dataset, seed=0)
    mamdr = evaluate_bank(
        MAMDR().fit(mamdr_model, dataset, config, seed=0),
        dataset, method="MLP+MAMDR",
    )

    rows = [
        [domain, baseline.per_domain[domain], mamdr.per_domain[domain]]
        for domain in baseline.per_domain
    ]
    rows.append(["MEAN", baseline.mean_auc, mamdr.mean_auc])
    print()
    print(format_table(["Domain", "MLP (alternate)", "MLP+MAMDR"], rows,
                       title="Per-domain test AUC"))
    print(f"\nMAMDR lift: {mamdr.mean_auc - baseline.mean_auc:+.4f} mean AUC")


if __name__ == "__main__":
    main()
