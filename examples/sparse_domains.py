"""Sparse-domain rescue: what Domain Regularization buys you.

Builds the Amazon-13 analogue — six data-rich domains plus seven very
sparse ones (Table III) — and compares three ways of specializing per
domain:

* plain per-domain finetuning (overfits the sparse domains),
* fully separate per-domain models (overfits even harder),
* MAMDR, whose DR step regularizes each domain's specific parameters with
  other domains' data (Algorithm 2).

Run:  python examples/sparse_domains.py
"""

from repro.core import MAMDR, TrainConfig
from repro.data import amazon13_sim
from repro.frameworks import AlternateFinetune, Separate
from repro.metrics import evaluate_bank
from repro.models import build_model
from repro.utils.tables import format_table

SPARSE = {"Gift Cards", "Magazine Subscriptions", "Software", "Luxury Beauty"}


def main():
    dataset = amazon13_sim(scale=1.0, seed=1)
    config = TrainConfig(epochs=6)

    reports = {}
    for name, framework in (
        ("Finetune", AlternateFinetune()),
        ("Separate", Separate()),
        ("MAMDR", MAMDR()),
    ):
        print(f"Training {name} ...")
        model = build_model("mlp", dataset, seed=1)
        bank = framework.fit(model, dataset, config, seed=1)
        reports[name] = evaluate_bank(bank, dataset, method=name)

    def mean_over(domains, report):
        values = [report.per_domain[d] for d in report.per_domain if
                  (d in SPARSE) == domains]
        return sum(values) / len(values)

    rows = []
    for name, report in reports.items():
        rows.append([
            name,
            report.mean_auc,
            mean_over(False, report),
            mean_over(True, report),
        ])
    print()
    print(format_table(
        ["Method", "All domains", "Rich domains", "Sparse domains"],
        rows, title="Mean test AUC on Amazon-13 (7 sparse domains)",
    ))


if __name__ == "__main__":
    main()
