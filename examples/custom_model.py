"""Model agnosticism: plug YOUR OWN model into MAMDR.

The paper's headline property is that MAMDR wraps *any* model structure.
This example defines a custom two-tower CTR model (per-field towers plus an
explicit interaction head) that the library has never seen, and trains it
with MAMDR unchanged — the framework only touches the model through
``loss``, ``state_dict`` and ``load_state_dict``.

Run:  python examples/custom_model.py
"""

import numpy as np

from repro.core import MAMDR, TrainConfig
from repro.data import amazon6_sim
from repro.frameworks import Alternate
from repro.metrics import evaluate_bank
from repro.models import build_encoder
from repro.models.base import CTRModel
from repro.nn import Dense, MLPBlock
from repro.nn import functional as F


class TwoTowerInteraction(CTRModel):
    """Custom model: user/item towers + an explicit interaction head.

    The head consumes [user_vec, item_vec, user_vec * item_vec], a common
    production pattern that none of the built-in zoo models use.
    """

    def __init__(self, encoder, rng, tower_dims=(24,), head_dims=(16,)):
        super().__init__(encoder)
        self.user_tower = MLPBlock(encoder.field_dim, tower_dims, rng,
                                   activation="relu")
        self.item_tower = MLPBlock(encoder.field_dim, tower_dims, rng,
                                   activation="relu")
        head_in = 3 * self.user_tower.out_dim
        self.head = MLPBlock(head_in, list(head_dims) + [1], rng,
                             activation="relu", out_activation="linear")

    def forward(self, batch):
        user_field, item_field = self.encoder.fields(batch)
        user_vec = self.user_tower(user_field)
        item_vec = self.item_tower(item_field)
        interaction = user_vec * item_vec
        features = F.concat([user_vec, item_vec, interaction], axis=-1)
        return self.head(features).reshape(len(batch))


def build(seed):
    rng = np.random.default_rng(seed)
    dataset = amazon6_sim(scale=0.6, seed=0)
    return dataset, TwoTowerInteraction(
        build_encoder(dataset, field_dim=16, rng=rng), rng
    )


def main():
    config = TrainConfig(epochs=8)
    dataset, model = build(seed=0)
    print(f"Custom model has {model.num_parameters()} parameters; "
          "MAMDR has never seen this structure.")

    _, baseline_model = build(seed=0)
    baseline = evaluate_bank(
        Alternate().fit(baseline_model, dataset, config, seed=0),
        dataset, method="TwoTower (alternate)",
    )
    mamdr = evaluate_bank(
        MAMDR().fit(model, dataset, config, seed=0),
        dataset, method="TwoTower+MAMDR",
    )
    print(f"TwoTower alternate  mean AUC: {baseline.mean_auc:.4f}")
    print(f"TwoTower + MAMDR    mean AUC: {mamdr.mean_auc:.4f}")
    print(f"lift: {mamdr.mean_auc - baseline.mean_auc:+.4f}")


if __name__ == "__main__":
    main()
