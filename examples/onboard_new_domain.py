"""Onboarding a new domain without retraining the platform.

The Taobao MDR system (Figure 2) adds new domains continuously: "the
system would automatically increase specific parameters for this new
domain".  This example trains MAMDR on the first 9 domains of the
Taobao-10 analogue, then onboards the 10th domain by training only its
specific delta θ_new with Domain Regularization against the frozen shared
state — and compares against serving the new domain with θ_S alone.

Run:  python examples/onboard_new_domain.py
"""

from repro.core import MAMDR, TrainConfig, extend_bank
from repro.data import MultiDomainDataset, taobao10_sim
from repro.metrics import evaluate_bank
from repro.models import build_model


def main():
    full = taobao10_sim(scale=1.0, seed=1)
    new_index = full.n_domains - 1
    existing = MultiDomainDataset(
        full.name, full.domains[:new_index],
        full.n_users, full.n_items,
        user_features=full.user_features, item_features=full.item_features,
    )
    config = TrainConfig(epochs=6)

    print(f"Training MAMDR on {existing.n_domains} existing domains ...")
    model = build_model("mlp", full, seed=1)
    bank = MAMDR().fit(model, existing, config, seed=1)

    new_domain = full.domain(new_index)
    print(f"Onboarding new domain {new_domain.name!r} "
          f"({new_domain.num_samples} interactions) ...")
    extended = extend_bank(bank, model, full, new_index, config=config, seed=1)

    report = evaluate_bank(extended, full, method="extended bank")
    shared_only = evaluate_bank(bank, full, method="shared fallback")

    print(f"\nnew domain {new_domain.name}:")
    print(f"  served with shared θ_S only : "
          f"AUC {shared_only.per_domain[new_domain.name]:.4f}")
    print(f"  served with onboarded Θ_new : "
          f"AUC {report.per_domain[new_domain.name]:.4f}")
    mean_existing = sum(
        report.per_domain[d.name] for d in existing.domains
    ) / existing.n_domains
    print(f"  existing domains (unchanged): mean AUC {mean_existing:.4f}")


if __name__ == "__main__":
    main()
