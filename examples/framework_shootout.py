"""Framework shootout: all ten learning frameworks on one dataset.

A compact version of the paper's Table X — every model-agnostic learning
framework applied to the same MLP on the Taobao-10 analogue.

Run:  python examples/framework_shootout.py
"""

from repro.core import TrainConfig
from repro.data import taobao10_sim
from repro.experiments import MethodSpec, run_comparison
from repro.experiments.table10 import TABLE10_FRAMEWORKS


def main():
    dataset = taobao10_sim(scale=0.8, seed=0)
    config = TrainConfig(epochs=6)
    specs = [
        MethodSpec(label, model="mlp", framework=name)
        for label, name in TABLE10_FRAMEWORKS
    ]
    print("Training 10 frameworks on Taobao-10 (MLP base model) ...")
    result = run_comparison(specs, dataset, config=config, seed=0, verbose=True)
    print()
    print(result.render(title="Frameworks on Taobao-10 — mean AUC and RANK"))
    print(f"\nbest framework: {result.best_method()}")


if __name__ == "__main__":
    main()
