"""Weight initializers."""

from __future__ import annotations

import numpy as np

from repro.nn import glorot_uniform, he_uniform, normal, zeros


def test_glorot_bounds_and_scale():
    rng = np.random.default_rng(0)
    weights = glorot_uniform(rng, (200, 100))
    limit = np.sqrt(6.0 / 300)
    assert weights.shape == (200, 100)
    assert np.abs(weights).max() <= limit
    # variance close to the Glorot target limit^2/3
    assert np.isclose(weights.var(), limit ** 2 / 3, rtol=0.1)


def test_he_wider_than_glorot_for_tall_matrices():
    rng = np.random.default_rng(0)
    he = he_uniform(np.random.default_rng(1), (50, 500))
    glorot = glorot_uniform(np.random.default_rng(1), (50, 500))
    assert np.abs(he).max() > np.abs(glorot).max()


def test_normal_std():
    rng = np.random.default_rng(0)
    weights = normal(rng, (5000,), std=0.05)
    assert np.isclose(weights.std(), 0.05, rtol=0.1)
    assert np.isclose(weights.mean(), 0.0, atol=0.005)


def test_zeros():
    z = zeros((3, 4))
    assert z.shape == (3, 4)
    assert not z.any()


def test_vector_and_conv_fans():
    rng = np.random.default_rng(0)
    vector = glorot_uniform(rng, (10,))
    assert vector.shape == (10,)
    tensor3 = glorot_uniform(rng, (4, 5, 3))
    assert tensor3.shape == (4, 5, 3)


def test_determinism_with_same_generator_seed():
    a = glorot_uniform(np.random.default_rng(7), (4, 4))
    b = glorot_uniform(np.random.default_rng(7), (4, 4))
    np.testing.assert_array_equal(a, b)
