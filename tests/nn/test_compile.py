"""Compile-and-replay executor: bitwise replay parity and guard semantics.

The contract under test is absolute: a compiled replay must be
**bit-for-bit identical** to the eager step it traced — every primitive's
forward buffer, every leaf gradient, every RNG draw.  ``replay_verified``
re-runs the step eagerly and compares op by op, so one verified step over
a graph that touches every registered forward kernel covers the whole
primitive set at once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TrainConfig, domain_negotiation_epoch
from repro.core.regularization import domain_regularization_round
from repro.core.param_space import DomainParameterSpace
from repro.data import DomainSpec, SyntheticConfig, generate_dataset
from repro.data.batching import Batch
from repro.models import build_model
from repro.nn import Module, Parameter, compiled_execution
from repro.nn import functional as F
from repro.nn import compile as compile_mod
from repro.nn.compile import executor_for
from repro.nn.optim import make_optimizer
from repro.tooling.sanitizer import ReplayMismatchError
from repro.utils.seeding import spawn_rng

pytestmark = pytest.mark.compile_smoke

VOCAB, N_FIXED, FIXED_DIM = 12, 9, 6
FIXED_FEATURES = spawn_rng(3, "compile", "fixed").normal(size=(N_FIXED, FIXED_DIM))


class OmniModel(Module):
    """One step of this model touches every forward kernel in the tape.

    ``structure_flag`` lets tests change the traced graph *after* tracing,
    which ``replay_verified`` must detect as a structure mismatch.
    """

    multi_domain = False

    def __init__(self, seed=0):
        super().__init__()
        rng = spawn_rng(seed, "compile", "omni")
        self.table = Parameter(rng.normal(size=(VOCAB, 4)) * 0.1)
        self.w1 = Parameter(rng.normal(size=(4 + FIXED_DIM, 8)) * 0.1)
        self.b1 = Parameter(rng.normal(size=(8,)) * 0.1)
        self.w2 = Parameter(rng.normal(size=(4, 1)) * 0.1)
        self._dropout_rng = spawn_rng(seed, "compile", "dropout")
        self.structure_flag = False

    def loss(self, batch):
        emb = F.embedding(self.table, batch.users)
        fixed = F.fixed_gather(FIXED_FEATURES, batch.items)
        x = F.concat([emb, fixed], axis=-1)
        h = F.fused_dense(x, self.w1, self.b1, activation="relu")
        h = F.dropout(h, 0.25, self._dropout_rng, training=self.training)
        s = F.softmax(h, axis=-1)
        t = s.tanh() + h.sigmoid() + F.softplus(h) + F.leaky_relu(h) + h.relu()
        u = ((t * 0.5) - (t / 3.0)).abs() ** 2
        v = (u + 1.0).log().sqrt()
        st = F.stack([v, (-u).exp()], axis=0).sum(axis=0)
        r = st.reshape(len(batch), 2, 4).transpose(0, 2, 1).swapaxes(1, 2)
        logits = (r[:, 0, :] @ self.w2).reshape(len(batch))
        if self.structure_flag:
            logits = logits * 2.0
        main = F.bce_with_logits(logits, batch.labels)
        return main + 0.1 * F.mse_loss(logits, batch.labels) \
            + 1e-4 * F.l2_penalty([self.w1, self.w2])


def make_batch(size, seed):
    rng = spawn_rng(seed, "compile", "batch", size)
    return Batch(
        users=rng.integers(0, VOCAB, size=size),
        items=rng.integers(0, N_FIXED, size=size),
        labels=rng.integers(0, 2, size=size).astype(np.float64),
        domain=0,
    )


def make_tiny_dataset(n_domains=4, seed=0):
    specs = tuple(
        DomainSpec(f"C{i}", 80, 0.25 + 0.05 * i) for i in range(n_domains)
    )
    return generate_dataset(SyntheticConfig(
        name="compile", domains=specs, n_users=60, n_items=40,
        latent_dim=4, feature_mode="fixed", feature_dim=8, seed=seed,
    ))


class TestReplayParity:
    def test_tape_covers_every_forward_kernel(self):
        model = OmniModel()
        optimizer = make_optimizer("adam", model.parameters(), 0.05)
        tape = executor_for(model).tape_for(make_batch(6, 0), optimizer)
        assert tape is not None, "omni step unexpectedly bailed to eager"
        kinds = {rec.kind for rec in tape._trace_records}
        missing = set(compile_mod._FWD_KERNELS) - kinds
        assert not missing, f"primitives never traced: {sorted(missing)}"

    def test_replay_bitwise_equals_eager_across_all_primitives(self):
        model = OmniModel()
        optimizer = make_optimizer("adam", model.parameters(), 0.05)
        executor = executor_for(model)
        tape = executor.tape_for(make_batch(6, 0), optimizer)
        # Several post-trace steps: buffers, optimizer slots, dropout
        # streams all advance; every op and leaf grad must stay bitwise
        # equal to eager or replay_verified raises naming the op.
        for step in range(4):
            tape.replay_verified(make_batch(6, step + 1), optimizer, model)

    def test_replay_verified_catches_planted_structure_change(self):
        model = OmniModel()
        optimizer = make_optimizer("adam", model.parameters(), 0.05)
        tape = executor_for(model).tape_for(make_batch(6, 0), optimizer)
        model.structure_flag = True
        with pytest.raises(ReplayMismatchError):
            tape.replay_verified(make_batch(6, 1), optimizer, model)


class TestGuards:
    def test_shape_change_triggers_retrace(self):
        model = OmniModel()
        optimizer = make_optimizer("adam", model.parameters(), 0.05)
        executor = executor_for(model)
        with compiled_execution():
            executor.step(make_batch(6, 0), optimizer)
            executor.step(make_batch(6, 1), optimizer)
            traces_before = executor.traces
            executor.step(make_batch(4, 2), optimizer)  # new shape → guard
        assert executor.traces == traces_before + 1
        assert executor.replays >= 1

    def test_eval_mode_is_a_distinct_signature(self):
        model = OmniModel()
        optimizer = make_optimizer("adam", model.parameters(), 0.05)
        executor = executor_for(model)
        with compiled_execution():
            executor.step(make_batch(6, 0), optimizer)
            traces_before = executor.traces
            model.eval()
            try:
                executor.step(make_batch(6, 1), optimizer)
            finally:
                model.train()
        assert executor.traces == traces_before + 1


class TestDeterminism:
    def test_dropout_streams_identical_under_replay(self):
        """Same seed, same batches: compiled and eager runs are one
        trajectory — losses and final parameters bitwise equal, which can
        only hold if replay draws the identical dropout masks."""
        batches = [make_batch(6, s) for s in range(6)]

        def run(compiled):
            model = OmniModel(seed=0)
            optimizer = make_optimizer("adam", model.parameters(), 0.05)
            executor = executor_for(model)
            losses = []
            for batch in batches:
                if compiled:
                    losses.append(executor.step(batch, optimizer))
                else:
                    losses.append(compile_mod.eager_step(model, batch, optimizer))
            return losses, model.state_dict()

        eager_losses, eager_state = run(compiled=False)
        compiled_losses, compiled_state = run(compiled=True)
        assert eager_losses == compiled_losses
        for name in eager_state:
            assert np.array_equal(eager_state[name], compiled_state[name]), name

    def test_full_dn_dr_epoch_byte_identical(self):
        """Tentpole acceptance: a full DN round plus a DR round produce
        byte-identical loss curves and states, compiled vs eager."""
        dataset = make_tiny_dataset()
        config = TrainConfig(batch_size=16, inner_steps=2, dr_steps=2,
                             sample_k=1)

        def run(compiled):
            model = build_model("mlp", dataset, seed=0)
            space = DomainParameterSpace(model, dataset.n_domains)
            optimizer = make_optimizer(
                config.inner_optimizer, model.parameters(), config.inner_lr
            )
            shared = model.state_dict()
            with compiled_execution(compiled):
                new_shared = domain_negotiation_epoch(
                    model, dataset, shared, config, spawn_rng(5, "dn"),
                    optimizer=optimizer,
                )
                delta = domain_regularization_round(
                    model, dataset, space, 0, config, spawn_rng(5, "dr"),
                )
            return new_shared, delta

        eager = run(False)
        compiled = run(True)
        for reference, candidate in zip(eager, compiled):
            assert set(reference) == set(candidate)
            for name in reference:
                assert np.array_equal(reference[name], candidate[name]), name
