"""State-dict arithmetic — the algebra behind DN/DR/MAMDR updates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    clone_state,
    state_add,
    state_allclose,
    state_dot,
    state_interpolate,
    state_norm,
    state_scale,
    state_sub,
    zeros_like_state,
)


def make_state(rng, keys=("a", "b")):
    return {key: rng.normal(size=(2, 3)) for key in keys}


def test_clone_is_deep():
    rng = np.random.default_rng(0)
    state = make_state(rng)
    cloned = clone_state(state)
    cloned["a"][0, 0] = 999.0
    assert state["a"][0, 0] != 999.0


def test_zeros_like_matches_shapes():
    rng = np.random.default_rng(0)
    state = make_state(rng)
    zeros = zeros_like_state(state)
    assert all(np.all(v == 0) for v in zeros.values())
    assert all(zeros[k].shape == state[k].shape for k in state)


def test_add_sub_scale_roundtrip():
    rng = np.random.default_rng(1)
    a, b = make_state(rng), make_state(rng)
    total = state_add(a, b)
    back = state_sub(total, b)
    assert state_allclose(back, a)
    doubled = state_scale(a, 2.0)
    assert state_allclose(state_sub(doubled, a), a)


def test_mismatched_keys_raise():
    rng = np.random.default_rng(2)
    a = make_state(rng, keys=("a", "b"))
    b = make_state(rng, keys=("a", "c"))
    with pytest.raises(KeyError):
        state_add(a, b)
    assert not state_allclose(a, b)


@settings(max_examples=25, deadline=None)
@given(step=st.floats(0.0, 1.0), seed=st.integers(0, 1000))
def test_interpolate_is_convex_combination(step, seed):
    """Property: interpolation lands between origin and target and hits the
    endpoints at step 0 / 1 (Eqs. 3 and 8)."""
    rng = np.random.default_rng(seed)
    origin, target = make_state(rng), make_state(rng)
    mid = state_interpolate(origin, target, step)
    expected = {
        k: origin[k] + step * (target[k] - origin[k]) for k in origin
    }
    assert state_allclose(mid, expected)
    if step == 0.0:
        assert state_allclose(mid, origin)
    if step == 1.0:
        assert state_allclose(mid, target)


def test_dot_and_norm_consistent():
    rng = np.random.default_rng(3)
    a = make_state(rng)
    assert state_dot(a, a) == pytest.approx(state_norm(a) ** 2)
    zero = zeros_like_state(a)
    assert state_dot(a, zero) == 0.0
    assert state_norm(zero) == 0.0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000))
def test_dot_bilinear(seed):
    """Property: state_dot is bilinear."""
    rng = np.random.default_rng(seed)
    a, b, c = make_state(rng), make_state(rng), make_state(rng)
    lhs = state_dot(state_add(a, b), c)
    rhs = state_dot(a, c) + state_dot(b, c)
    assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


def test_inplace_variants_match_out_of_place():
    from repro.nn import state_add_, state_interpolate_, state_scale_, state_sub_

    rng = np.random.default_rng(42)
    a, b = make_state(rng), make_state(rng)

    expected = state_add(a, b, scale=0.5)
    target = clone_state(a)
    assert state_add_(target, b, scale=0.5) is target
    assert state_allclose(target, expected)

    expected = state_sub(a, b)
    target = clone_state(a)
    assert state_sub_(target, b) is target
    assert state_allclose(target, expected)

    expected = state_scale(a, -2.0)
    target = clone_state(a)
    assert state_scale_(target, -2.0) is target
    assert state_allclose(target, expected)

    expected = state_interpolate(a, b, 0.3)
    target = clone_state(a)
    assert state_interpolate_(target, b, 0.3) is target
    assert state_allclose(target, expected)
    # the right operand is never written
    assert state_allclose(b, b)


def test_inplace_interpolate_accepts_parameter_view():
    """state_interpolate_ works against a zero-copy {name: param.data} view."""
    from repro.nn import Parameter, state_interpolate_

    rng = np.random.default_rng(7)
    origin = make_state(rng)
    params = {key: Parameter(rng.normal(size=(2, 3))) for key in origin}
    view = {key: p.data for key, p in params.items()}
    expected = state_interpolate(origin, {k: v.copy() for k, v in view.items()}, 0.5)
    result = state_interpolate_(clone_state(origin), view, 0.5)
    assert state_allclose(result, expected)
    # the live parameters are untouched
    for key, p in params.items():
        np.testing.assert_array_equal(p.data, view[key])


def test_inplace_mismatched_keys_rejected():
    from repro.nn import state_add_

    rng = np.random.default_rng(0)
    with pytest.raises(KeyError):
        state_add_(make_state(rng, keys=("a",)), make_state(rng, keys=("a", "b")))
