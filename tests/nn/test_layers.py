"""Layers: shapes, modes, normalization semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Dense,
    Dropout,
    Embedding,
    Identity,
    LayerNorm,
    MLPBlock,
    PartitionedNorm,
    Tensor,
)


RNG = np.random.default_rng(7)


def test_dense_shapes_and_activation():
    layer = Dense(4, 3, RNG, activation="relu")
    out = layer(Tensor(RNG.normal(size=(5, 4))))
    assert out.shape == (5, 3)
    assert (out.data >= 0).all()


def test_dense_no_bias():
    layer = Dense(4, 3, RNG, use_bias=False)
    assert layer.bias is None
    names = [name for name, _ in layer.named_parameters()]
    assert names == ["weight"]


def test_dense_rejects_unknown_activation():
    with pytest.raises(ValueError):
        Dense(2, 2, RNG, activation="swishish")


def test_mlp_block_structure():
    block = MLPBlock(6, [8, 4, 1], RNG, dropout_rate=0.5,
                     out_activation="linear")
    assert block.out_dim == 1
    out = block(Tensor(RNG.normal(size=(3, 6))))
    assert out.shape == (3, 1)
    # final layer is linear: outputs can be negative
    block.eval()
    outs = block(Tensor(RNG.normal(size=(200, 6)))).data
    assert (outs < 0).any()


def test_mlp_block_empty_hidden_is_identity_dims():
    block = MLPBlock(5, [], RNG)
    assert block.out_dim == 5
    x = Tensor(RNG.normal(size=(2, 5)))
    np.testing.assert_allclose(block(x).data, x.data)


def test_embedding_lookup_and_bounds():
    emb = Embedding(10, 4, RNG)
    out = emb(np.array([0, 3, 3, 9]))
    assert out.shape == (4, 4)
    np.testing.assert_allclose(out.data[1], out.data[2])
    with pytest.raises(IndexError):
        emb(np.array([10]))
    with pytest.raises(IndexError):
        emb(np.array([-1]))


def test_dropout_train_vs_eval():
    drop = Dropout(0.5, np.random.default_rng(0))
    x = Tensor(np.ones((100, 10)))
    out_train = drop(x).data
    assert (out_train == 0.0).any()
    # inverted scaling keeps the expectation
    assert out_train.mean() == pytest.approx(1.0, abs=0.15)
    drop.eval()
    np.testing.assert_allclose(drop(x).data, x.data)


def test_dropout_rejects_bad_rate():
    with pytest.raises(ValueError):
        Dropout(1.0, np.random.default_rng(0))


def test_identity_passthrough():
    x = Tensor(np.ones(3))
    assert Identity()(x) is x


def test_layer_norm_standardizes():
    norm = LayerNorm(8)
    out = norm(Tensor(RNG.normal(loc=5.0, scale=3.0, size=(4, 8)))).data
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-8)
    np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)


def test_partitioned_norm_per_domain_params():
    norm = PartitionedNorm(6, num_domains=3)
    x = Tensor(RNG.normal(size=(4, 6)))
    out0 = norm(x, 0).data
    out1 = norm(x, 1).data
    # with untouched params all domains agree initially
    np.testing.assert_allclose(out0, out1)
    # shifting one domain's beta only changes that domain
    norm.beta_domain.data[1] += 1.0
    out1_shifted = norm(x, 1).data
    np.testing.assert_allclose(norm(x, 0).data, out0)
    np.testing.assert_allclose(out1_shifted, out1 + 1.0)
    with pytest.raises(IndexError):
        norm(x, 3)


def test_gradients_flow_through_partitioned_norm_domain_slice():
    norm = PartitionedNorm(4, num_domains=2)
    x = Tensor(RNG.normal(size=(3, 4)))
    loss = (norm(x, 0) ** 2).sum()
    loss.backward()
    # only domain 0's slice receives gradient
    assert np.abs(norm.gamma_domain.grad[0]).sum() > 0
    assert np.abs(norm.gamma_domain.grad[1]).sum() == 0
