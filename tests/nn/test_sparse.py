"""Sparse-gradient fast path: parity with the dense reference everywhere.

The contract under test: with sparse gradients enabled (the default), every
observable number — embedding gradients, optimizer updates, accumulated
multi-path gradients — matches the dense ``np.add.at`` + full-table-update
reference to float64 rounding, while untouched rows are never written.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adagrad,
    Adam,
    Embedding,
    Parameter,
    SparseGrad,
    Tensor,
    sparse_grads_enabled,
    use_sparse_grads,
)
from repro.nn import functional as F

RNG = np.random.default_rng(7)


def add_at_reference(shape, indices, grad_rows):
    dense = np.zeros(shape)
    np.add.at(dense, indices, grad_rows)
    return dense


# ----------------------------------------------------------------------
# SparseGrad mechanics
# ----------------------------------------------------------------------

def test_from_lookup_coalesces_duplicate_rows():
    indices = np.array([3, 1, 3, 3, 0, 1])
    grads = RNG.normal(size=(6, 4))
    sg = SparseGrad.from_lookup(indices, grads, (8, 4))
    assert sg.nnz_rows == 3
    np.testing.assert_array_equal(sg.rows, [0, 1, 3])
    np.testing.assert_allclose(
        sg.to_dense(), add_at_reference((8, 4), indices, grads), atol=0
    )


def test_from_lookup_empty_batch():
    sg = SparseGrad.from_lookup(np.empty(0, dtype=np.int64),
                                np.empty((0, 4)), (5, 4))
    assert sg.nnz_rows == 0
    np.testing.assert_array_equal(sg.to_dense(), np.zeros((5, 4)))


def test_merge_matches_dense_sum():
    a = SparseGrad.from_lookup(np.array([0, 2]), RNG.normal(size=(2, 3)), (6, 3))
    b = SparseGrad.from_lookup(np.array([2, 5]), RNG.normal(size=(2, 3)), (6, 3))
    merged = a.merge(b)
    np.testing.assert_allclose(merged.to_dense(), a.to_dense() + b.to_dense())
    assert merged.nnz_rows == 3


def test_add_to_dense_leaves_input_untouched():
    sg = SparseGrad.from_lookup(np.array([1]), np.ones((1, 2)), (3, 2))
    dense = np.zeros((3, 2))
    out = sg.add_to_dense(dense)
    assert out is not dense
    np.testing.assert_array_equal(dense, 0.0)
    np.testing.assert_array_equal(out, sg.to_dense())


def test_array_interop():
    sg = SparseGrad.from_lookup(np.array([0, 0]), np.ones((2, 2)), (3, 2))
    np.testing.assert_allclose(np.asarray(sg)[0], [2.0, 2.0])
    np.testing.assert_allclose(sg[0], [2.0, 2.0])
    assert sg.copy().rows is not sg.rows


# ----------------------------------------------------------------------
# Embedding backward parity (sparse vs np.add.at reference)
# ----------------------------------------------------------------------

def embedding_grad(enabled, indices, weight_init, coeff):
    with use_sparse_grads(enabled):
        weight = Parameter(weight_init.copy())
        out = F.embedding(weight, indices)
        (out * Tensor(coeff)).sum().backward()
        grad = weight.grad
    return np.asarray(grad), grad


def test_embedding_backward_sparse_matches_dense():
    indices = RNG.integers(0, 20, size=64)
    weight_init = RNG.normal(size=(20, 8))
    coeff = RNG.normal(size=(64, 8))
    dense_grad, raw_dense = embedding_grad(False, indices, weight_init, coeff)
    sparse_grad, raw_sparse = embedding_grad(True, indices, weight_init, coeff)
    assert isinstance(raw_dense, np.ndarray)
    assert isinstance(raw_sparse, SparseGrad)
    np.testing.assert_allclose(sparse_grad, dense_grad, atol=1e-8)


def test_embedding_backward_multidim_indices():
    indices = RNG.integers(0, 10, size=(4, 3))
    weight_init = RNG.normal(size=(10, 5))
    coeff = RNG.normal(size=(4, 3, 5))
    dense_grad, _ = embedding_grad(False, indices, weight_init, coeff)
    sparse_grad, _ = embedding_grad(True, indices, weight_init, coeff)
    np.testing.assert_allclose(sparse_grad, dense_grad, atol=1e-8)


def test_embedding_gradcheck_finite_difference():
    """Sparse embedding backward against central finite differences."""
    indices = np.array([0, 2, 2, 4])
    weight_init = RNG.normal(size=(5, 3))

    def loss_value(w):
        return float((w[indices] ** 2).sum())

    weight = Parameter(weight_init.copy())
    out = F.embedding(weight, indices)
    (out * out).sum().backward()
    analytic = np.asarray(weight.grad)

    eps = 1e-6
    numeric = np.zeros_like(weight_init)
    for i in range(weight_init.size):
        bumped = weight_init.copy().ravel()
        bumped[i] += eps
        up = loss_value(bumped.reshape(weight_init.shape))
        bumped[i] -= 2 * eps
        down = loss_value(bumped.reshape(weight_init.shape))
        numeric.ravel()[i] = (up - down) / (2 * eps)
    np.testing.assert_allclose(analytic, numeric, atol=1e-6)


def test_double_lookup_accumulates_sparse():
    """Two lookups on one table merge into one coalesced SparseGrad."""
    weight_init = RNG.normal(size=(12, 4))
    first = np.array([1, 5, 5])
    second = np.array([5, 9])

    def run(enabled):
        with use_sparse_grads(enabled):
            weight = Parameter(weight_init.copy())
            loss = F.embedding(weight, first).sum() + F.embedding(weight, second).sum()
            loss.backward()
            return weight.grad

    sparse = run(True)
    dense = run(False)
    assert isinstance(sparse, SparseGrad)
    np.testing.assert_allclose(np.asarray(sparse), dense, atol=1e-8)


def test_sparse_plus_dense_accumulation():
    """An embedding also touched densely (L2 penalty) densifies correctly."""
    weight_init = RNG.normal(size=(9, 3))

    def run(enabled):
        with use_sparse_grads(enabled):
            weight = Parameter(weight_init.copy())
            loss = F.embedding(weight, np.array([2, 2, 7])).sum()
            loss = loss + 0.5 * F.l2_penalty([weight])
            loss.backward()
            return np.asarray(weight.grad)

    np.testing.assert_allclose(run(True), run(False), atol=1e-8)


def test_sparse_grad_through_interior_node_densifies():
    """A sparse grad reaching a non-leaf node is densified before its
    backward fn runs (the embedding table is itself a computed tensor)."""
    base = Tensor(RNG.normal(size=(6, 3)), requires_grad=True)
    table = base * 2.0
    out = F.embedding(table, np.array([1, 4]))
    out.sum().backward()
    expected = np.zeros((6, 3))
    expected[[1, 4]] = 2.0
    np.testing.assert_allclose(base.grad, expected)


def test_use_sparse_grads_toggle_restores():
    assert sparse_grads_enabled()
    with use_sparse_grads(False):
        assert not sparse_grads_enabled()
        with use_sparse_grads(True):
            assert sparse_grads_enabled()
        assert not sparse_grads_enabled()
    assert sparse_grads_enabled()


# ----------------------------------------------------------------------
# Sparse optimizer updates vs dense reference
# ----------------------------------------------------------------------

def make_grad_pair(shape, rows, rng):
    values = rng.normal(size=(len(rows),) + shape[1:])
    sparse = SparseGrad(shape, np.asarray(rows, dtype=np.int64), values.copy())
    dense = np.zeros(shape)
    dense[list(rows)] = values
    return sparse, dense


@pytest.mark.parametrize("cls,kwargs", [
    (SGD, {}),
    (Adam, {}),
    (Adagrad, {}),
])
def test_sparse_step_matches_dense_on_touched_rows(cls, kwargs):
    rng = np.random.default_rng(3)
    init = rng.normal(size=(10, 4))
    p_sparse = Parameter(init.copy())
    p_dense = Parameter(init.copy())
    opt_sparse = cls([p_sparse], 0.1, **kwargs)
    opt_dense = cls([p_dense], 0.1, **kwargs)

    rows = [1, 4, 7]
    untouched = [0, 2, 3, 5, 6, 8, 9]
    for _ in range(5):  # same rows every step: exact dense equivalence
        sparse_grad, dense_grad = make_grad_pair((10, 4), rows, rng)
        p_sparse.grad = sparse_grad
        p_dense.grad = dense_grad
        opt_sparse.step()
        opt_dense.step()

    np.testing.assert_allclose(
        p_sparse.data[rows], p_dense.data[rows], rtol=0, atol=1e-12
    )
    # untouched rows were never written: bit-identical to the init
    np.testing.assert_array_equal(p_sparse.data[untouched], init[untouched])


def test_adagrad_sparse_exactly_matches_dense_with_varying_rows():
    """Adagrad's zero-grad rows don't move under the dense update either,
    so sparse and dense agree on *every* row even when rows vary."""
    rng = np.random.default_rng(5)
    init = rng.normal(size=(8, 3))
    p_sparse, p_dense = Parameter(init.copy()), Parameter(init.copy())
    opt_sparse = Adagrad([p_sparse], 0.5)
    opt_dense = Adagrad([p_dense], 0.5)
    for rows in ([0, 3], [3, 6], [1], [0, 6, 7]):
        sparse_grad, dense_grad = make_grad_pair((8, 3), rows, rng)
        p_sparse.grad = sparse_grad
        p_dense.grad = dense_grad
        opt_sparse.step()
        opt_dense.step()
    np.testing.assert_allclose(p_sparse.data, p_dense.data, rtol=0, atol=1e-12)


def test_adam_lazy_correction_decays_skipped_moments():
    """A row touched at steps 1 and 3 must carry the same moments as dense
    Adam (which decayed them by beta at the zero-gradient step 2)."""
    rng = np.random.default_rng(9)
    init = rng.normal(size=(6, 2))
    p_sparse, p_dense = Parameter(init.copy()), Parameter(init.copy())
    opt_sparse = Adam([p_sparse], 0.1)
    opt_dense = Adam([p_dense], 0.1)

    g1 = rng.normal(size=(1, 2))
    g3 = rng.normal(size=(1, 2))
    schedule = [([2], g1), ([], None), ([2], g3)]
    for rows, values in schedule:
        if rows:
            p_sparse.grad = SparseGrad((6, 2), np.asarray(rows), values.copy())
            dense = np.zeros((6, 2))
            dense[rows] = values
        else:
            p_sparse.grad = SparseGrad(
                (6, 2), np.empty(0, dtype=np.int64), np.empty((0, 2))
            )
            dense = np.zeros((6, 2))
        p_dense.grad = dense
        opt_sparse.step()
        opt_dense.step()

    # Moments of the touched row match the dense recursion exactly.
    np.testing.assert_allclose(opt_sparse._m[0][2], opt_dense._m[0][2], atol=1e-14)
    np.testing.assert_allclose(opt_sparse._v[0][2], opt_dense._v[0][2], atol=1e-14)
    # Rows never touched were never written.
    never = [0, 1, 3, 4, 5]
    np.testing.assert_array_equal(p_sparse.data[never], init[never])


def test_sgd_momentum_falls_back_to_dense():
    rng = np.random.default_rng(11)
    init = rng.normal(size=(5, 2))
    p = Parameter(init.copy())
    opt = SGD([p], 0.1, momentum=0.9)
    sparse_grad, dense_grad = make_grad_pair((5, 2), [1, 3], rng)
    p.grad = sparse_grad
    opt.step()

    p_ref = Parameter(init.copy())
    opt_ref = SGD([p_ref], 0.1, momentum=0.9)
    p_ref.grad = dense_grad
    opt_ref.step()
    np.testing.assert_allclose(p.data, p_ref.data, atol=1e-12)


def test_training_with_embedding_model_sparse_matches_dense():
    """End-to-end: a few SGD steps through Embedding + loss, both paths."""
    def run(enabled):
        with use_sparse_grads(enabled):
            rng = np.random.default_rng(1)
            emb = Embedding(30, 4, rng)
            opt = SGD(list(emb.parameters()), 0.5)
            data_rng = np.random.default_rng(2)
            for _ in range(4):
                ids = data_rng.integers(0, 30, size=16)
                labels = data_rng.integers(0, 2, size=16).astype(float)
                logits = emb(ids).sum(axis=1)
                loss = F.bce_with_logits(logits, labels)
                opt.zero_grad()
                loss.backward()
                opt.step()
            return emb.weight.data.copy()

    np.testing.assert_allclose(run(True), run(False), atol=1e-12)
