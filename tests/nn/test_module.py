"""Module system: registration, state dicts, train/eval modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Dense, Module, ModuleList, Parameter


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.w = Parameter(np.ones((2, 2)))
        self.child = Dense(2, 3, np.random.default_rng(0))
        self.blocks = ModuleList([Dense(3, 1, np.random.default_rng(1))])

    def forward(self, x):
        return self.blocks[0](self.child(x @ self.w))


def test_named_parameters_are_dotted_and_ordered():
    toy = Toy()
    names = [name for name, _ in toy.named_parameters()]
    assert names == [
        "w",
        "child.weight",
        "child.bias",
        "blocks.0.weight",
        "blocks.0.bias",
    ]


def test_num_parameters_counts_scalars():
    toy = Toy()
    expected = 4 + (2 * 3 + 3) + (3 * 1 + 1)
    assert toy.num_parameters() == expected


def test_state_dict_round_trip():
    toy = Toy()
    state = toy.state_dict()
    # state is a copy, not a view
    state["w"][0, 0] = 99.0
    assert toy.w.data[0, 0] == 1.0

    other = Toy()
    other.load_state_dict(state)
    assert other.w.data[0, 0] == 99.0
    # loading copies too
    state["w"][0, 0] = -1.0
    assert other.w.data[0, 0] == 99.0


def test_load_state_dict_rejects_missing_and_mismatched():
    toy = Toy()
    state = toy.state_dict()
    del state["w"]
    with pytest.raises(KeyError):
        toy.load_state_dict(state)

    state = toy.state_dict()
    state["w"] = np.zeros((3, 3))
    with pytest.raises(ValueError):
        toy.load_state_dict(state)


def test_train_eval_recursion():
    toy = Toy()
    assert toy.training and toy.child.training
    toy.eval()
    assert not toy.training and not toy.child.training
    assert not toy.blocks[0].training
    toy.train()
    assert toy.blocks[0].training


def test_zero_grad_clears_all():
    toy = Toy()
    for param in toy.parameters():
        param.grad = np.ones_like(param.data)
    toy.zero_grad()
    assert all(p.grad is None for p in toy.parameters())


def test_module_list_type_checked():
    with pytest.raises(TypeError):
        ModuleList([object()])


def test_named_modules_walks_tree():
    toy = Toy()
    names = [name for name, _ in toy.named_modules()]
    assert "" in names
    assert "child" in names
    assert "blocks.0" in names


def test_parameter_reassignment_replaces_registration():
    toy = Toy()
    toy.w = Parameter(np.zeros((2, 2)))
    names = [name for name, _ in toy.named_parameters()]
    assert names.count("w") == 1
    assert toy.w.data.sum() == 0.0
