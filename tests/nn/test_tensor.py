"""Behavioral tests for the Tensor class (beyond gradient correctness)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, is_grad_enabled, no_grad


def test_construction_coerces_to_float64():
    t = Tensor([1, 2, 3])
    assert t.data.dtype == np.float64
    assert t.shape == (3,)
    assert t.size == 3
    assert len(t) == 3


def test_as_tensor_passthrough():
    t = Tensor([1.0])
    assert as_tensor(t) is t
    wrapped = as_tensor([1.0, 2.0])
    assert isinstance(wrapped, Tensor)
    assert not wrapped.requires_grad


def test_repr_mentions_grad_flag():
    assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))
    assert "requires_grad" not in repr(Tensor([1.0]))


def test_detach_shares_data_but_cuts_graph():
    t = Tensor([1.0, 2.0], requires_grad=True)
    d = t.detach()
    assert not d.requires_grad
    assert d.data is t.data


def test_item_on_scalar():
    assert Tensor(np.array(2.5)).item() == 2.5
    with pytest.raises(Exception):
        Tensor([1.0, 2.0]).item()


def test_arithmetic_with_python_scalars():
    t = Tensor([1.0, 2.0])
    np.testing.assert_allclose((t + 1).data, [2.0, 3.0])
    np.testing.assert_allclose((1 + t).data, [2.0, 3.0])
    np.testing.assert_allclose((t - 1).data, [0.0, 1.0])
    np.testing.assert_allclose((3 - t).data, [2.0, 1.0])
    np.testing.assert_allclose((t * 2).data, [2.0, 4.0])
    np.testing.assert_allclose((t / 2).data, [0.5, 1.0])
    np.testing.assert_allclose((2 / t).data, [2.0, 1.0])


def test_matmul_requires_2d():
    with pytest.raises(ValueError):
        Tensor([1.0, 2.0]) @ Tensor([[1.0], [2.0]])


def test_pow_rejects_tensor_exponent():
    with pytest.raises(TypeError):
        Tensor([2.0]) ** Tensor([2.0])


def test_comparison_returns_numpy_bool():
    t = Tensor([1.0, -1.0])
    mask = t > 0
    assert mask.dtype == bool
    assert mask.tolist() == [True, False]
    assert (t < 0).tolist() == [False, True]


def test_backward_on_non_grad_tensor_raises():
    with pytest.raises(RuntimeError):
        Tensor([1.0]).backward()


def test_grad_accumulates_across_backward_calls():
    x = Tensor(np.array([1.0]), requires_grad=True)
    (x * 2).sum().backward()
    (x * 3).sum().backward()
    np.testing.assert_allclose(x.grad, [5.0])
    x.zero_grad()
    assert x.grad is None


def test_grad_flag_restored_after_exception():
    assert is_grad_enabled()
    with pytest.raises(ValueError):
        with no_grad():
            raise ValueError("boom")
    assert is_grad_enabled()


def test_sigmoid_is_stable_for_extreme_logits():
    t = Tensor(np.array([-1000.0, 0.0, 1000.0]))
    out = t.sigmoid().data
    np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)
    sp = t.softplus().data
    assert np.isfinite(sp).all()
    assert sp[0] == pytest.approx(0.0, abs=1e-12)
    assert sp[2] == pytest.approx(1000.0)


def test_no_graph_recorded_for_non_grad_inputs():
    a = Tensor([1.0])
    b = Tensor([2.0])
    c = a + b
    assert c._backward is None
    assert c._parents == ()


def test_mean_over_tuple_axis():
    x = np.arange(24, dtype=float).reshape(2, 3, 4)
    t = Tensor(x, requires_grad=True)
    out = t.mean(axis=(0, 1))
    np.testing.assert_allclose(out.data, x.mean(axis=(0, 1)))
    out.sum().backward()
    # each output element averages 2*3 = 6 inputs
    np.testing.assert_allclose(t.grad, np.full_like(x, 1.0 / 6.0))


def test_mean_over_tuple_axis_keepdims_and_negative():
    x = np.arange(12, dtype=float).reshape(3, 4)
    t = Tensor(x, requires_grad=True)
    out = t.mean(axis=(-2, -1), keepdims=True)
    assert out.shape == (1, 1)
    np.testing.assert_allclose(out.data, x.mean(axis=(0, 1), keepdims=True))
    out.sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(x, 1.0 / 12.0))


def test_no_grad_nests_and_restores_each_level():
    assert is_grad_enabled()
    with no_grad():
        assert not is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        # inner exit must not re-enable grad while the outer block is open
        assert not is_grad_enabled()
    assert is_grad_enabled()


def test_no_grad_is_isolated_per_thread():
    """One thread entering no_grad() must not disable recording in another
    (the reason _GRAD_ENABLED is a ContextVar, not a module global)."""
    import threading

    entered = threading.Event()
    release = threading.Event()
    observed = {}

    def hold_no_grad():
        with no_grad():
            entered.set()
            release.wait(timeout=10.0)

    def observe():
        entered.wait(timeout=10.0)
        observed["enabled"] = is_grad_enabled()
        x = Tensor(np.ones(2), requires_grad=True)
        observed["recorded"] = ((x * 2).sum()._backward is not None)
        release.set()

    workers = [threading.Thread(target=hold_no_grad),
               threading.Thread(target=observe)]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=10.0)
    assert observed == {"enabled": True, "recorded": True}
    assert is_grad_enabled()
