"""Optimizers: convergence on convex problems and state handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, Adagrad, Adam, Parameter, Tensor, make_optimizer


def quadratic_loss(param, target):
    diff = param - Tensor(target)
    return (diff * diff).sum()


def run_descent(optimizer_cls, lr, steps=300, **kwargs):
    target = np.array([1.5, -2.0, 0.5])
    param = Parameter(np.zeros(3))
    opt = optimizer_cls([param], lr, **kwargs)
    for _ in range(steps):
        loss = quadratic_loss(param, target)
        opt.zero_grad()
        loss.backward()
        opt.step()
    return param.data, target


@pytest.mark.parametrize("cls,lr", [(SGD, 0.1), (Adam, 0.05), (Adagrad, 0.5)])
def test_converges_on_quadratic(cls, lr):
    final, target = run_descent(cls, lr)
    np.testing.assert_allclose(final, target, atol=1e-2)


def test_sgd_momentum_converges():
    final, target = run_descent(SGD, 0.05, momentum=0.9)
    np.testing.assert_allclose(final, target, atol=1e-2)


def test_sgd_weight_decay_shrinks_solution():
    final_plain, target = run_descent(SGD, 0.1)
    final_decayed, _ = run_descent(SGD, 0.1, weight_decay=1.0)
    assert np.linalg.norm(final_decayed) < np.linalg.norm(final_plain)


def test_step_skips_params_without_grad():
    p1 = Parameter(np.zeros(2))
    p2 = Parameter(np.ones(2))
    opt = SGD([p1, p2], 0.1)
    p1.grad = np.ones(2)
    opt.step()
    np.testing.assert_allclose(p1.data, [-0.1, -0.1])
    np.testing.assert_allclose(p2.data, [1.0, 1.0])


def test_adam_bias_correction_first_step():
    p = Parameter(np.zeros(1))
    opt = Adam([p], lr=0.1)
    p.grad = np.array([1.0])
    opt.step()
    # With bias correction the first step magnitude equals lr.
    np.testing.assert_allclose(p.data, [-0.1], atol=1e-6)


def test_reset_state_clears_moments():
    p = Parameter(np.zeros(1))
    opt = Adam([p], lr=0.1)
    p.grad = np.array([1.0])
    opt.step()
    opt.reset_state()
    assert opt._t == 0 and not opt._m and not opt._v

    sgd = SGD([p], 0.1, momentum=0.9)
    p.grad = np.array([1.0])
    sgd.step()
    sgd.reset_state()
    assert not sgd._velocity


def test_make_optimizer_registry():
    p = Parameter(np.zeros(1))
    assert isinstance(make_optimizer("sgd", [p], 0.1), SGD)
    assert isinstance(make_optimizer("ADAM", [p], 0.1), Adam)
    assert isinstance(make_optimizer("Adagrad", [p], 0.1), Adagrad)
    with pytest.raises(ValueError):
        make_optimizer("rmsprop", [p], 0.1)


def test_optimizer_rejects_bad_args():
    with pytest.raises(ValueError):
        SGD([], 0.1)
    with pytest.raises(ValueError):
        SGD([Parameter(np.zeros(1))], -0.1)
