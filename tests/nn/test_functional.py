"""Functional ops: numerical semantics beyond gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


def test_softmax_rows_sum_to_one():
    rng = np.random.default_rng(0)
    out = F.softmax(Tensor(rng.normal(size=(4, 7)) * 10), axis=-1).data
    np.testing.assert_allclose(out.sum(axis=-1), 1.0)
    assert (out >= 0).all()


def test_softmax_stable_for_huge_logits():
    out = F.softmax(Tensor(np.array([[1000.0, 0.0], [0.0, -1000.0]]))).data
    assert np.isfinite(out).all()
    np.testing.assert_allclose(out[0], [1.0, 0.0], atol=1e-12)


def test_bce_matches_reference():
    rng = np.random.default_rng(1)
    logits = rng.normal(size=20)
    labels = (rng.random(20) > 0.4).astype(float)
    ours = F.bce_with_logits(Tensor(logits), labels).item()
    probs = 1.0 / (1.0 + np.exp(-logits))
    reference = -(labels * np.log(probs) + (1 - labels) * np.log(1 - probs)).mean()
    assert ours == pytest.approx(reference, rel=1e-10)


def test_bce_finite_for_extreme_logits():
    logits = Tensor(np.array([1000.0, -1000.0]))
    labels = np.array([0.0, 1.0])
    loss = F.bce_with_logits(logits, labels).item()
    assert np.isfinite(loss)
    assert loss == pytest.approx(1000.0)


def test_concat_and_stack_shapes():
    a = Tensor(np.ones((2, 3)))
    b = Tensor(np.zeros((2, 2)))
    out = F.concat([a, b], axis=1)
    assert out.shape == (2, 5)
    stacked = F.stack([a, a], axis=1)
    assert stacked.shape == (2, 2, 3)


def test_embedding_rows():
    weight = Tensor(np.arange(12.0).reshape(4, 3))
    out = F.embedding(weight, np.array([3, 0]))
    np.testing.assert_allclose(out.data, [[9, 10, 11], [0, 1, 2]])


def test_dropout_disabled_paths():
    rng = np.random.default_rng(0)
    x = Tensor(np.ones(50))
    assert F.dropout(x, 0.0, rng) is x
    assert F.dropout(x, 0.5, rng, training=False) is x
    with pytest.raises(ValueError):
        F.dropout(x, 1.5, rng)


def test_l2_penalty():
    a = Tensor(np.array([3.0, 4.0]))
    assert F.l2_penalty([a]).item() == pytest.approx(25.0)
    with pytest.raises(ValueError):
        F.l2_penalty([])


def test_linear_with_and_without_bias():
    x = Tensor(np.ones((2, 3)))
    w = Tensor(np.ones((3, 4)))
    b = Tensor(np.ones(4))
    np.testing.assert_allclose(F.linear(x, w).data, 3.0)
    np.testing.assert_allclose(F.linear(x, w, b).data, 4.0)
