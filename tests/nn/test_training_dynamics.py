"""Training-dynamics sanity: the substrate can actually fit functions.

These tests pin down end-to-end optimization behavior of the engine —
the kind of regression that individual gradcheck tests cannot catch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, MLPBlock, SGD, Tensor
from repro.nn import functional as F


def fit(model, inputs, targets, optimizer, steps):
    losses = []
    for _ in range(steps):
        logits = model(Tensor(inputs)).reshape(len(targets))
        loss = F.bce_with_logits(logits, targets)
        model.zero_grad()
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
    return losses


def test_mlp_fits_linearly_separable_data():
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(300, 4))
    targets = (inputs @ np.array([1.0, -2.0, 0.5, 0.0]) > 0).astype(float)
    model = MLPBlock(4, [16, 1], rng, out_activation="linear")
    losses = fit(model, inputs, targets, Adam(model.parameters(), 0.02), 250)
    assert losses[-1] < 0.15
    assert losses[-1] < losses[0] / 3


def test_mlp_fits_xor_interaction():
    """Nonlinear capacity check: sign(x0 * x1) requires hidden units."""
    rng = np.random.default_rng(1)
    inputs = rng.normal(size=(400, 2))
    targets = (inputs[:, 0] * inputs[:, 1] > 0).astype(float)
    model = MLPBlock(2, [24, 1], rng, out_activation="linear")
    fit(model, inputs, targets, Adam(model.parameters(), 0.02), 500)
    logits = model(Tensor(inputs)).data.reshape(-1)
    accuracy = ((logits > 0) == (targets > 0.5)).mean()
    assert accuracy > 0.85


def test_sgd_and_adam_both_reduce_loss():
    rng = np.random.default_rng(2)
    inputs = rng.normal(size=(200, 3))
    targets = (inputs[:, 0] > 0).astype(float)
    for optimizer_cls, lr in ((SGD, 0.5), (Adam, 0.02)):
        model = MLPBlock(3, [8, 1], rng, out_activation="linear")
        losses = fit(model, inputs, targets,
                     optimizer_cls(model.parameters(), lr), 150)
        assert losses[-1] < losses[0]


def test_dropout_training_still_converges():
    rng = np.random.default_rng(3)
    inputs = rng.normal(size=(300, 4))
    targets = (inputs[:, 0] + inputs[:, 1] > 0).astype(float)
    model = MLPBlock(4, [32, 1], rng, dropout_rate=0.3,
                     out_activation="linear")
    losses = fit(model, inputs, targets, Adam(model.parameters(), 0.02), 300)
    model.eval()
    logits = model(Tensor(inputs)).data.reshape(-1)
    accuracy = ((logits > 0) == (targets > 0.5)).mean()
    assert accuracy > 0.9


def test_loss_is_permutation_invariant():
    rng = np.random.default_rng(4)
    logits = rng.normal(size=50)
    labels = (rng.random(50) > 0.5).astype(float)
    base = F.bce_with_logits(Tensor(logits), labels).item()
    perm = rng.permutation(50)
    shuffled = F.bce_with_logits(Tensor(logits[perm]), labels[perm]).item()
    assert base == pytest.approx(shuffled)
