"""Fused kernels (bce_with_logits, fused_dense) vs their composed references."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Dense, Tensor
from repro.nn import functional as F

RNG = np.random.default_rng(13)

ACTIVATION_REFS = {
    "linear": lambda t: t,
    "relu": lambda t: t.relu(),
    "sigmoid": lambda t: t.sigmoid(),
    "tanh": lambda t: t.tanh(),
}


def grads_of(loss_fn, *arrays):
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    loss = loss_fn(*tensors)
    loss.backward()
    return loss.item(), [t.grad for t in tensors]


# ----------------------------------------------------------------------
# Fused BCE-with-logits
# ----------------------------------------------------------------------

def test_bce_fused_matches_reference_value_and_grads():
    logits = RNG.normal(size=64) * 4.0
    labels = RNG.integers(0, 2, size=64).astype(float)
    fused_val, (fused_gl, fused_gy) = grads_of(F.bce_with_logits, logits, labels)
    ref_val, (ref_gl, ref_gy) = grads_of(F.bce_with_logits_reference, logits, labels)
    assert fused_val == pytest.approx(ref_val, abs=1e-12)
    np.testing.assert_allclose(fused_gl, ref_gl, atol=1e-8)
    np.testing.assert_allclose(fused_gy, ref_gy, atol=1e-8)


def test_bce_fused_soft_labels_and_weights():
    logits = RNG.normal(size=32)
    labels = RNG.random(32)  # soft labels
    weights = RNG.random(32) + 0.1
    fused_val, fused_grads = grads_of(
        lambda l, y, w: F.bce_with_logits(l, y, sample_weight=w),
        logits, labels, weights,
    )
    ref_val, ref_grads = grads_of(
        lambda l, y, w: F.bce_with_logits_reference(l, y, sample_weight=w),
        logits, labels, weights,
    )
    assert fused_val == pytest.approx(ref_val, abs=1e-12)
    for fused_g, ref_g in zip(fused_grads, ref_grads):
        np.testing.assert_allclose(fused_g, ref_g, atol=1e-8)


def test_bce_fused_extreme_logits_stable():
    logits = np.array([-800.0, -5.0, 0.0, 5.0, 800.0])
    labels = np.array([0.0, 1.0, 0.0, 1.0, 1.0])
    val, (grad_logits, _) = grads_of(F.bce_with_logits, logits, labels)
    assert np.isfinite(val)
    assert np.isfinite(grad_logits).all()


def test_bce_fused_gradcheck_finite_difference():
    logits = RNG.normal(size=8)
    labels = RNG.integers(0, 2, size=8).astype(float)

    t = Tensor(logits.copy(), requires_grad=True)
    F.bce_with_logits(t, labels).backward()
    analytic = t.grad

    eps = 1e-6
    numeric = np.zeros_like(logits)
    for i in range(logits.size):
        bumped = logits.copy()
        bumped[i] += eps
        up = F.bce_with_logits(Tensor(bumped), labels).item()
        bumped[i] -= 2 * eps
        down = F.bce_with_logits(Tensor(bumped), labels).item()
        numeric[i] = (up - down) / (2 * eps)
    np.testing.assert_allclose(analytic, numeric, atol=1e-6)


def test_bce_fused_is_single_node():
    logits = Tensor(RNG.normal(size=4), requires_grad=True)
    loss = F.bce_with_logits(logits, np.ones(4))
    assert loss._parents and loss._parents[0] is logits


# ----------------------------------------------------------------------
# Fused Dense (matmul + bias + activation)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("activation", sorted(ACTIVATION_REFS))
@pytest.mark.parametrize("use_bias", [True, False])
def test_fused_dense_matches_composition(activation, use_bias):
    x = RNG.normal(size=(6, 5))
    w = RNG.normal(size=(5, 3))
    b = RNG.normal(size=3)
    ref_act = ACTIVATION_REFS[activation]

    def fused(*tensors):
        xt, wt = tensors[0], tensors[1]
        bt = tensors[2] if use_bias else None
        return (F.fused_dense(xt, wt, bt, activation=activation) ** 2).sum()

    def composed(*tensors):
        xt, wt = tensors[0], tensors[1]
        out = xt @ wt
        if use_bias:
            out = out + tensors[2]
        return (ref_act(out) ** 2).sum()

    arrays = (x, w, b) if use_bias else (x, w)
    fused_val, fused_grads = grads_of(fused, *arrays)
    ref_val, ref_grads = grads_of(composed, *arrays)
    assert fused_val == pytest.approx(ref_val, abs=1e-10)
    for fused_g, ref_g in zip(fused_grads, ref_grads):
        np.testing.assert_allclose(fused_g, ref_g, atol=1e-8)


def test_fused_dense_batched_3d():
    x = RNG.normal(size=(2, 4, 5))
    w = RNG.normal(size=(5, 3))
    b = RNG.normal(size=3)
    fused_val, fused_grads = grads_of(
        lambda xt, wt, bt: (F.fused_dense(xt, wt, bt, "relu") ** 2).sum(),
        x, w, b,
    )
    ref_val, ref_grads = grads_of(
        lambda xt, wt, bt: (((xt @ wt) + bt).relu() ** 2).sum(), x, w, b
    )
    assert fused_val == pytest.approx(ref_val, abs=1e-10)
    for fused_g, ref_g in zip(fused_grads, ref_grads):
        np.testing.assert_allclose(fused_g, ref_g, atol=1e-8)


def test_fused_dense_rejects_unknown_activation():
    with pytest.raises(ValueError):
        F.fused_dense(Tensor(np.ones((2, 2))), Tensor(np.ones((2, 2))),
                      activation="softsign")


def test_dense_layer_uses_fused_kernel_and_matches_manual():
    layer = Dense(4, 3, np.random.default_rng(0), activation="relu")
    x = Tensor(RNG.normal(size=(5, 4)), requires_grad=True)
    out = layer(x)
    # one node: Dense output's parents are (x, weight, bias) directly
    assert out._parents[0] is x
    assert out._parents[1] is layer.weight
    manual = (x.detach() @ layer.weight.detach() + layer.bias.detach()).relu()
    np.testing.assert_allclose(out.data, manual.data, atol=1e-12)

    (out * out).sum().backward()
    assert layer.weight.grad is not None and np.isfinite(layer.weight.grad).all()
