"""Finite-difference gradient checks for every autodiff primitive.

Each check perturbs the input elementwise and compares the analytic
gradient of a scalar loss against central differences.  Hypothesis drives
random shapes and values for the core ops.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, functional as F

EPS = 1e-6
TOL = 1e-6


def numeric_grad(fn, x, eps=EPS):
    """Central finite differences of scalar-valued fn at x."""
    grad = np.zeros_like(x)
    flat = grad.ravel()
    x_flat = x.ravel()
    for i in range(x.size):
        original = x_flat[i]
        x_flat[i] = original + eps
        up = fn(x)
        x_flat[i] = original - eps
        down = fn(x)
        x_flat[i] = original
        flat[i] = (up - down) / (2.0 * eps)
    return grad


def check(fn_tensor, x, tol=TOL):
    """Compare analytic and numeric gradients of scalar fn at x."""
    t = Tensor(x.copy(), requires_grad=True)
    out = fn_tensor(t)
    out.backward()
    analytic = t.grad

    def scalar(values):
        return fn_tensor(Tensor(values.copy())).item()

    numeric = numeric_grad(scalar, x.copy())
    np.testing.assert_allclose(analytic, numeric, atol=tol, rtol=1e-4)


RNG = np.random.default_rng(0)


@pytest.mark.parametrize("shape", [(3,), (2, 4), (2, 3, 2)])
def test_sum_grad(shape):
    check(lambda t: (t * t).sum(), RNG.normal(size=shape))


def test_add_broadcast_grad():
    x = RNG.normal(size=(3, 4))
    other = Tensor(RNG.normal(size=(4,)))
    check(lambda t: (t + other).sum(), x)
    # gradient w.r.t. the broadcast operand
    base = Tensor(RNG.normal(size=(3, 4)))
    check(lambda t: ((base + t) * (base + t)).sum(), RNG.normal(size=(4,)))


def test_mul_div_grad():
    x = RNG.normal(size=(3, 3)) + 3.0
    other = Tensor(RNG.normal(size=(3, 3)) + 3.0)
    check(lambda t: (t * other).mean(), x)
    check(lambda t: (t / other).mean(), x)
    check(lambda t: (other / t).mean(), x)


def test_pow_neg_grad():
    x = np.abs(RNG.normal(size=(4,))) + 0.5
    check(lambda t: (t ** 3).sum(), x)
    check(lambda t: (-t).sum(), x)


def test_matmul_grad():
    x = RNG.normal(size=(3, 4))
    w = Tensor(RNG.normal(size=(4, 2)))
    check(lambda t: (t @ w).sum(), x)
    a = Tensor(RNG.normal(size=(5, 3)))
    check(lambda t: ((a @ t) ** 2).sum(), x)


def test_batched_matmul_grad():
    x = RNG.normal(size=(2, 3, 4))
    w = Tensor(RNG.normal(size=(2, 4, 3)))
    check(lambda t: (t @ w).sum(), x)
    # broadcast batch dim on the right operand
    w2 = Tensor(RNG.normal(size=(4, 3)))
    check(lambda t: (t @ w2).sum(), x)


@pytest.mark.parametrize("unary", ["exp", "tanh", "sigmoid", "relu",
                                   "softplus", "abs", "sqrt", "log"])
def test_unary_grads(unary):
    if unary in ("sqrt", "log"):
        x = np.abs(RNG.normal(size=(3, 3))) + 0.5
    elif unary in ("relu", "abs"):
        # keep away from the kink at zero
        x = RNG.normal(size=(3, 3))
        x[np.abs(x) < 0.1] = 0.5
    else:
        x = RNG.normal(size=(3, 3))
    check(lambda t: getattr(t, unary)().sum(), x)


def test_reduction_axis_grads():
    x = RNG.normal(size=(3, 4))
    check(lambda t: (t.sum(axis=0) ** 2).sum(), x)
    check(lambda t: (t.sum(axis=1, keepdims=True) ** 2).sum(), x)
    check(lambda t: (t.mean(axis=-1) ** 2).sum(), x)


def test_reshape_transpose_grads():
    x = RNG.normal(size=(2, 6))
    check(lambda t: (t.reshape(3, 4) ** 2).sum(), x)
    check(lambda t: (t.transpose() ** 2).sum(), x)
    y = RNG.normal(size=(2, 3, 4))
    check(lambda t: (t.transpose(1, 0, 2) ** 2).sum(), y)
    check(lambda t: (t.swapaxes(-1, -2) ** 2).sum(), y)


def test_getitem_grad():
    x = RNG.normal(size=(5, 3))
    check(lambda t: (t[1:4] ** 2).sum(), x)
    idx = np.array([0, 2, 2, 4])
    check(lambda t: (t[idx] ** 2).sum(), x)


def test_concat_stack_grads():
    x = RNG.normal(size=(3, 4))
    other = Tensor(RNG.normal(size=(3, 2)))
    check(lambda t: (F.concat([t, other], axis=1) ** 2).sum(), x)
    other2 = Tensor(RNG.normal(size=(3, 4)))
    check(lambda t: (F.stack([t, other2], axis=0) ** 2).sum(), x)
    check(lambda t: (F.stack([other2, t], axis=1) ** 2).sum(), x)


def test_embedding_grad():
    weight = RNG.normal(size=(6, 3))
    idx = np.array([0, 1, 1, 5])
    check(lambda t: (F.embedding(t, idx) ** 2).sum(), weight)


def test_softmax_grad():
    x = RNG.normal(size=(3, 5))
    target = Tensor(RNG.normal(size=(3, 5)))
    check(lambda t: (F.softmax(t, axis=-1) * target).sum(), x)


def test_bce_with_logits_grad():
    x = RNG.normal(size=(8,))
    labels = (RNG.random(8) > 0.5).astype(float)
    check(lambda t: F.bce_with_logits(t, labels), x)
    weights = RNG.random(8) + 0.1
    check(lambda t: F.bce_with_logits(t, labels, sample_weight=weights), x)


def test_leaky_relu_grad():
    x = RNG.normal(size=(4, 4))
    x[np.abs(x) < 0.1] = 0.7
    check(lambda t: F.leaky_relu(t, 0.1).sum(), x)


def test_mse_grad():
    x = RNG.normal(size=(6,))
    target = RNG.normal(size=(6,))
    check(lambda t: F.mse_loss(t, target), x)


@pytest.mark.parametrize("activation", ["linear", "relu", "sigmoid", "tanh"])
def test_fused_dense_grad(activation):
    x = RNG.normal(size=(4, 3))
    x[np.abs(x) < 0.1] = 0.5  # keep relu away from its kink
    weight = RNG.normal(size=(3, 2))
    bias = RNG.normal(size=(2,))

    def wrt_x(t):
        return (F.fused_dense(t, Tensor(weight), Tensor(bias),
                              activation=activation) ** 2).sum()

    check(wrt_x, x)

    def wrt_weight(t):
        return (F.fused_dense(Tensor(x), t, Tensor(bias),
                              activation=activation) ** 2).sum()

    check(wrt_weight, weight)

    def wrt_bias_no_bias_path(t):
        return (F.fused_dense(Tensor(x), Tensor(weight), t,
                              activation=activation) ** 2).sum()

    check(wrt_bias_no_bias_path, bias)


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(2, 5),
    cols=st.integers(2, 5),
    seed=st.integers(0, 10_000),
)
def test_mlp_composite_gradcheck(rows, cols, seed):
    """Property: a full MLP-style composite has correct gradients for any
    shape and random values."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(rows, cols))
    w1 = Tensor(rng.normal(size=(cols, 3)))
    w2 = Tensor(rng.normal(size=(3, 1)))
    labels = (rng.random(rows) > 0.5).astype(float)

    def fn(t):
        hidden = (t @ w1).tanh()
        logits = (hidden @ w2).reshape(rows)
        return F.bce_with_logits(logits, labels)

    check(fn, x, tol=1e-5)


def test_grad_accumulates_over_reuse():
    """A tensor used twice receives the sum of both branch gradients."""
    x = Tensor(np.array([2.0, 3.0]), requires_grad=True)
    out = (x * x).sum() + (3.0 * x).sum()
    out.backward()
    np.testing.assert_allclose(x.grad, np.array([7.0, 9.0]))


def test_backward_requires_scalar():
    x = Tensor(np.ones(3), requires_grad=True)
    with pytest.raises(RuntimeError):
        (x * 2).backward()


def test_no_grad_blocks_graph():
    from repro.nn import no_grad

    x = Tensor(np.ones(3), requires_grad=True)
    with no_grad():
        y = (x * 2).sum()
    assert not y.requires_grad
