"""Persistence of states and per-domain banks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import (
    load_bank_states,
    load_state,
    save_bank_states,
    save_state,
)
from repro.nn.state import state_allclose, state_scale


def test_state_round_trip(tmp_path, tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    state = model.state_dict()
    path = tmp_path / "state.npz"
    save_state(path, state)
    loaded = load_state(path)
    assert state_allclose(state, loaded)
    # loading into a fresh model works
    other = build_model("mlp", tiny_dataset, seed=99)
    other.load_state_dict(loaded)
    assert state_allclose(other.state_dict(), state)


def test_bank_round_trip(tmp_path, tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    base = model.state_dict()
    domain_states = {0: base, 2: state_scale(base, 2.0)}
    path = tmp_path / "bank.npz"
    save_bank_states(path, domain_states, default_state=base)
    loaded_states, loaded_default = load_bank_states(path)
    assert set(loaded_states) == {0, 2}
    assert state_allclose(loaded_states[2], state_scale(base, 2.0))
    assert state_allclose(loaded_default, base)


def test_bank_without_default(tmp_path, tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    path = tmp_path / "bank.npz"
    save_bank_states(path, {1: model.state_dict()})
    states, default = load_bank_states(path)
    assert default is None
    assert set(states) == {1}


def test_empty_bank_rejected(tmp_path):
    with pytest.raises(ValueError):
        save_bank_states(tmp_path / "x.npz", {})


def test_serving_from_reloaded_bank(tmp_path, tiny_dataset, fast_config):
    """A trained StateBank survives a save/load round trip with identical
    predictions — the deployment path of Figure 2."""
    from repro.core import MAMDR
    from repro.data import sample_batch
    from repro.frameworks import StateBank

    model = build_model("mlp", tiny_dataset, seed=0)
    bank = MAMDR().fit(model, tiny_dataset, fast_config, seed=0)
    path = tmp_path / "deploy.npz"
    save_bank_states(path, bank.domain_states, default_state=bank.default_state)

    states, default = load_bank_states(path)
    model2 = build_model("mlp", tiny_dataset, seed=123)
    bank2 = StateBank(model2, states, default_state=default)

    rng = np.random.default_rng(0)
    batch = sample_batch(tiny_dataset.domain(1).test, 1, 16, rng)
    np.testing.assert_allclose(bank.scores(batch), bank2.scores(batch))
