"""Persistence of states and per-domain banks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import (
    SerializationError,
    load_bank_states,
    load_state,
    save_bank_states,
    save_state,
    state_checksum,
)
from repro.nn.state import state_allclose, state_scale


def test_state_round_trip(tmp_path, tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    state = model.state_dict()
    path = tmp_path / "state.npz"
    save_state(path, state)
    loaded = load_state(path)
    assert state_allclose(state, loaded)
    # loading into a fresh model works
    other = build_model("mlp", tiny_dataset, seed=99)
    other.load_state_dict(loaded)
    assert state_allclose(other.state_dict(), state)


def test_bank_round_trip(tmp_path, tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    base = model.state_dict()
    domain_states = {0: base, 2: state_scale(base, 2.0)}
    path = tmp_path / "bank.npz"
    save_bank_states(path, domain_states, default_state=base)
    loaded_states, loaded_default = load_bank_states(path)
    assert set(loaded_states) == {0, 2}
    assert state_allclose(loaded_states[2], state_scale(base, 2.0))
    assert state_allclose(loaded_default, base)


def test_bank_without_default(tmp_path, tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    path = tmp_path / "bank.npz"
    save_bank_states(path, {1: model.state_dict()})
    states, default = load_bank_states(path)
    assert default is None
    assert set(states) == {1}


def test_empty_bank_rejected(tmp_path):
    with pytest.raises(ValueError):
        save_bank_states(tmp_path / "x.npz", {})


def _rewrite_archive(path, mutate):
    """Load an archive's raw keys, apply ``mutate``, and write it back."""
    with np.load(path) as archive:
        payload = {k: archive[k].copy() for k in archive.files}
    mutate(payload)
    np.savez(path, **payload)


def test_checksum_is_order_independent_and_value_sensitive():
    a = {"x": np.arange(4.0), "y": np.ones((2, 2))}
    b = {"y": np.ones((2, 2)), "x": np.arange(4.0)}
    assert state_checksum(a) == state_checksum(b)
    c = {"x": np.arange(4.0), "y": np.ones((2, 2)) + 1e-12}
    assert state_checksum(a) != state_checksum(c)
    # renaming a key changes the digest even with identical values
    d = {"x2": np.arange(4.0), "y": np.ones((2, 2))}
    assert state_checksum(a) != state_checksum(d)


def test_load_rejects_bitflipped_payload(tmp_path):
    path = tmp_path / "state.npz"
    save_state(path, {"w": np.arange(6.0)})

    def flip(payload):
        payload["w"][3] += 1e-9

    _rewrite_archive(path, flip)
    with pytest.raises(SerializationError, match="checksum"):
        load_state(path)


def test_load_rejects_renamed_key(tmp_path):
    path = tmp_path / "state.npz"
    save_state(path, {"w": np.arange(6.0)})

    def rename(payload):
        payload["v"] = payload.pop("w")

    _rewrite_archive(path, rename)
    with pytest.raises(SerializationError, match="checksum"):
        load_state(path)


def test_load_rejects_malformed_header(tmp_path):
    path = tmp_path / "state.npz"
    save_state(path, {"w": np.arange(6.0)})

    def garble(payload):
        payload["__repro_meta__"] = np.array("not json{")

    _rewrite_archive(path, garble)
    with pytest.raises(SerializationError, match="malformed"):
        load_state(path)


def test_load_rejects_newer_format_version(tmp_path):
    import json

    path = tmp_path / "state.npz"
    save_state(path, {"w": np.arange(6.0)})

    def bump(payload):
        meta = json.loads(str(payload["__repro_meta__"][()]))
        meta["format_version"] = 99
        payload["__repro_meta__"] = np.array(json.dumps(meta))

    _rewrite_archive(path, bump)
    with pytest.raises(SerializationError, match="format version 99"):
        load_state(path)


def test_legacy_headerless_archive_still_loads(tmp_path):
    """Pre-header archives load by default, but require_checksum rejects."""
    path = tmp_path / "legacy.npz"
    np.savez(path, w=np.arange(6.0))
    loaded = load_state(path)
    np.testing.assert_array_equal(loaded["w"], np.arange(6.0))
    with pytest.raises(SerializationError, match="header"):
        load_state(path, require_checksum=True)


def test_load_unreadable_file_raises_serialization_error(tmp_path):
    path = tmp_path / "broken.npz"
    path.write_bytes(b"this is not a zip archive")
    with pytest.raises(SerializationError, match="cannot read"):
        load_state(path)


def test_bank_rejects_unrecognized_keys(tmp_path):
    path = tmp_path / "bank.npz"
    save_bank_states(path, {0: {"w": np.arange(3.0)}})

    def smuggle(payload):
        meta = payload.pop("__repro_meta__")
        payload["rogue/w"] = np.zeros(3)
        # keep the header consistent so only the key check fires
        from repro.nn.serialization import FORMAT_VERSION
        import json

        payload["__repro_meta__"] = np.array(json.dumps({
            "format_version": FORMAT_VERSION,
            "checksum": state_checksum(
                {k: v for k, v in payload.items() if k != "__repro_meta__"}
            ),
        }))
        del meta

    _rewrite_archive(path, smuggle)
    with pytest.raises(SerializationError, match="unrecognized key"):
        load_bank_states(path)


def test_serialization_error_is_a_value_error():
    # callers catching the historic ValueError keep working
    assert issubclass(SerializationError, ValueError)


def test_serving_from_reloaded_bank(tmp_path, tiny_dataset, fast_config):
    """A trained StateBank survives a save/load round trip with identical
    predictions — the deployment path of Figure 2."""
    from repro.core import MAMDR
    from repro.data import sample_batch
    from repro.frameworks import StateBank

    model = build_model("mlp", tiny_dataset, seed=0)
    bank = MAMDR().fit(model, tiny_dataset, fast_config, seed=0)
    path = tmp_path / "deploy.npz"
    save_bank_states(path, bank.domain_states, default_state=bank.default_state)

    states, default = load_bank_states(path)
    model2 = build_model("mlp", tiny_dataset, seed=123)
    bank2 = StateBank(model2, states, default_state=default)

    rng = np.random.default_rng(0)
    batch = sample_batch(tiny_dataset.domain(1).test, 1, 16, rng)
    np.testing.assert_allclose(bank.scores(batch), bank2.scores(batch))
