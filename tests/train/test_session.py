"""The Session facade: one config, every training path, exact parity."""

from __future__ import annotations

import json

import pytest

from repro.core import TrainConfig
from repro.distributed import FaultPlan, RetryPolicy, SimulatedCluster
from repro.frameworks import framework_by_name
from repro.metrics import evaluate_bank
from repro.models import build_model
from repro.nn.serialization import state_checksum
from repro.train import DistributedConfig, Session, SessionConfig


# ----------------------------------------------------------------------
# Config validation and serialization
# ----------------------------------------------------------------------
def test_config_is_frozen():
    config = SessionConfig()
    with pytest.raises(AttributeError):
        config.model = "star"


def test_nested_dicts_are_coerced():
    config = SessionConfig(
        train={"epochs": 3, "batch_size": 16},
        distributed={"n_workers": 2, "mode": "sync",
                     "faults": {"seed": 4, "drop_rate": 0.1},
                     "retry": {"max_attempts": 3}},
    )
    assert isinstance(config.train, TrainConfig)
    assert config.train.epochs == 3
    assert isinstance(config.distributed, DistributedConfig)
    assert isinstance(config.distributed.faults, FaultPlan)
    assert isinstance(config.distributed.retry, RetryPolicy)
    assert config.distributed.retry.max_attempts == 3


def test_invalid_distributed_mode_rejected():
    with pytest.raises(ValueError):
        DistributedConfig(mode="chaotic")
    with pytest.raises(ValueError):
        DistributedConfig(n_workers=0)


def test_unknown_keys_rejected():
    with pytest.raises(ValueError, match="unknown session config keys"):
        SessionConfig.from_dict({"modell": "mlp"})


def test_json_roundtrip_with_faults(tmp_path):
    config = SessionConfig(
        dataset="taobao10_sim", scale=0.25, model="mlp", seed=3,
        train={"epochs": 2},
        distributed={
            "n_workers": 3, "mode": "async", "heartbeat_timeout": 1,
            "faults": {"seed": 7, "drop_rate": 0.05, "duplicate_rate": 0.1,
                       "crash_after": {"1": 15}},
        },
    )
    path = tmp_path / "session.json"
    path.write_text(json.dumps(config.to_dict()))
    loaded = SessionConfig.from_file(path)
    assert loaded == config
    assert loaded.distributed.faults.crashes_at(1, 15)


def test_method_label_defaults():
    assert SessionConfig(model="mlp", framework="mamdr").method_label == "mlp+mamdr"
    assert SessionConfig(
        distributed=DistributedConfig(n_workers=2)
    ).method_label == "mlp+cluster"
    assert SessionConfig(method="custom").method_label == "custom"


# ----------------------------------------------------------------------
# Parity with the underlying construction paths
# ----------------------------------------------------------------------
def test_framework_session_matches_manual_construction(tiny_dataset,
                                                       fast_config):
    session = Session(
        SessionConfig(dataset=tiny_dataset.name, model="mlp",
                      framework="alternate", seed=0, train=fast_config),
        dataset=tiny_dataset,
    )
    result = session.fit()
    assert result.stats is None

    model = build_model("mlp", tiny_dataset, seed=0)
    bank = framework_by_name("alternate").fit(model, tiny_dataset,
                                              fast_config, seed=0)
    report = evaluate_bank(bank, tiny_dataset, method="manual")
    assert result.mean_auc == pytest.approx(report.mean_auc, abs=0.0)
    assert state_checksum(result.bank.model.state_dict()) == state_checksum(
        bank.model.state_dict()
    )


def test_distributed_session_matches_manual_cluster(tiny_dataset,
                                                    fast_config):
    session = Session(
        SessionConfig(
            dataset=tiny_dataset.name, model="mlp", seed=1, model_seed=0,
            train=fast_config,
            distributed=DistributedConfig(n_workers=3, mode="async"),
        ),
        dataset=tiny_dataset,
    )
    result = session.fit()
    assert result.stats is not None and "ps_version" in result.stats

    cluster = SimulatedCluster(n_workers=3, mode="async")
    bank = cluster.run(
        lambda worker_id: build_model("mlp", tiny_dataset, seed=0),
        tiny_dataset, fast_config, seed=1,
    )
    assert state_checksum(result.bank.model.state_dict()) == state_checksum(
        bank.model.state_dict()
    )


def test_session_accepts_plain_dict(tiny_dataset, fast_config):
    session = Session(
        {"dataset": tiny_dataset.name, "model": "mlp",
         "framework": "alternate", "seed": 0,
         "train": {"epochs": 2, "batch_size": 32, "inner_steps": 3,
                   "dr_steps": 2, "sample_k": 1, "finetune_steps": 4}},
        dataset=tiny_dataset,
    )
    assert isinstance(session.config, SessionConfig)
    result = session.fit()
    assert 0.0 <= result.mean_auc <= 1.0


def test_chaos_session_runs_and_reports_recovery(tiny_dataset, fast_config):
    session = Session(
        SessionConfig(
            dataset=tiny_dataset.name, model="mlp", seed=1, model_seed=0,
            train=fast_config,
            distributed=DistributedConfig(
                n_workers=3, mode="async", heartbeat_timeout=1,
                faults=FaultPlan(seed=5, drop_rate=0.1, duplicate_rate=0.1),
            ),
        ),
        dataset=tiny_dataset,
    )
    result = session.fit()
    assert result.stats["crashes"] == []
    assert session.cluster is not None


def test_run_method_goes_through_session(tiny_dataset, fast_config):
    """run_method is rewired through Session — same report as before."""
    from repro.experiments.runner import MethodSpec, run_method

    report = run_method(
        MethodSpec(name="MLP+Alternate", model="mlp", framework="alternate"),
        tiny_dataset, config=fast_config, seed=0,
    )
    assert report.method == "MLP+Alternate"

    model = build_model("mlp", tiny_dataset, seed=0)
    bank = framework_by_name("alternate").fit(model, tiny_dataset,
                                              fast_config, seed=0)
    manual = evaluate_bank(bank, tiny_dataset, method="MLP+Alternate")
    assert report.mean_auc == pytest.approx(manual.mean_auc, abs=0.0)


# ----------------------------------------------------------------------
# ConfigError, the online section, and warm starts
# ----------------------------------------------------------------------
def test_config_errors_are_one_catchable_type():
    from repro.train import ConfigError

    assert issubclass(ConfigError, ValueError)
    with pytest.raises(ConfigError, match="unknown session config keys"):
        SessionConfig.from_dict({"modell": "mlp"})
    with pytest.raises(ConfigError, match="'train' section"):
        SessionConfig(train={"epochz": 3})
    with pytest.raises(ConfigError, match="'distributed.faults' section"):
        SessionConfig(distributed={"faults": {"drop_ratee": 0.1}})
    with pytest.raises(ConfigError, match="'online' section"):
        SessionConfig(online=[1, 2, 3])


def test_online_and_warm_start_round_trip(tmp_path):
    config = SessionConfig(
        model="mlp", seed=5,
        warm_start_snapshot="artifacts/day0.npz",
        online={"bootstrap_windows": 2,
                "stream": {"n_windows": 6, "drift_rate": 0.1}},
    )
    path = tmp_path / "session.json"
    path.write_text(json.dumps(config.to_dict()))
    loaded = SessionConfig.from_file(path)
    assert loaded == config
    assert loaded.warm_start_snapshot == "artifacts/day0.npz"
    assert loaded.online["stream"]["drift_rate"] == 0.1
    # defaults stay None and survive the round trip too
    bare = SessionConfig.from_dict(json.loads(
        json.dumps(SessionConfig().to_dict())
    ))
    assert bare.warm_start_snapshot is None and bare.online is None


def test_warm_start_snapshot_seeds_the_model(tiny_dataset, fast_config,
                                             tmp_path):
    from repro.nn.serialization import save_bank_states

    trained = build_model("mlp", tiny_dataset, seed=0)
    state = {n: v + 0.5 for n, v in trained.state_dict().items()}
    path = tmp_path / "day0.npz"
    save_bank_states(path, {}, default_state=state)

    session = Session(
        SessionConfig(dataset=tiny_dataset.name, model="mlp", seed=0,
                      train=fast_config, warm_start_snapshot=str(path)),
        dataset=tiny_dataset,
    )
    model = session.build_model(tiny_dataset)
    assert state_checksum(model.state_dict()) == state_checksum(state)


def test_warm_start_archive_without_default_state_rejected(tiny_dataset,
                                                           tmp_path):
    from repro.nn.serialization import save_bank_states
    from repro.train import ConfigError

    trained = build_model("mlp", tiny_dataset, seed=0)
    path = tmp_path / "bank.npz"
    save_bank_states(path, {0: trained.state_dict()})
    session = Session(
        SessionConfig(dataset=tiny_dataset.name, model="mlp",
                      warm_start_snapshot=str(path)),
        dataset=tiny_dataset,
    )
    with pytest.raises(ConfigError, match="no default"):
        session.build_model(tiny_dataset)


def test_online_section_feeds_the_sim_config():
    from repro.online import build_sim_config
    from repro.train import ConfigError

    config = SessionConfig(
        model="mlp", seed=9, train={"epochs": 1, "dn_rounds": 2},
        online={"bootstrap_windows": 2,
                "stream": {"n_windows": 6, "window_events": 240},
                "inject_regression_at": 3},
    )
    sim = build_sim_config(config)
    assert sim.seed == 9                       # inherits the session seed
    assert sim.train is config.train           # and the session schedule
    assert sim.stream.n_windows == 6
    assert sim.inject_regression_at == 3
    with pytest.raises(ConfigError, match="unknown online config keys"):
        build_sim_config(SessionConfig(online={"bootstrap_windowz": 2}))
