"""Grid-search utility."""

from __future__ import annotations

import pytest

from repro.core import TrainConfig
from repro.experiments import MethodSpec
from repro.experiments.tuning import GridSearchResult, grid_search


def test_grid_covers_product(tiny_dataset):
    spec = MethodSpec("MLP", model="mlp", framework="alternate")
    base = TrainConfig(epochs=1, inner_steps=2, batch_size=32)
    result = grid_search(
        spec, tiny_dataset,
        {"inner_lr": [1e-2, 1e-3], "outer_lr": [0.5, 0.1]},
        base_config=base, seed=0,
    )
    assert len(result.cells) == 4
    params_seen = {tuple(sorted(c["params"].items())) for c in result.cells}
    assert len(params_seen) == 4
    for cell in result.cells:
        assert 0.0 <= cell["val_auc"] <= 1.0
        assert 0.0 <= cell["test_auc"] <= 1.0


def test_best_selected_on_validation(tiny_dataset):
    spec = MethodSpec("MLP", model="mlp", framework="alternate")
    base = TrainConfig(epochs=1, inner_steps=2, batch_size=32)
    result = grid_search(spec, tiny_dataset, {"inner_lr": [1e-2, 1e-4]},
                         base_config=base, seed=0)
    best = result.best
    assert best["val_auc"] == max(c["val_auc"] for c in result.cells)


def test_render_contains_cells(tiny_dataset):
    spec = MethodSpec("MLP", model="mlp", framework="alternate")
    base = TrainConfig(epochs=1, inner_steps=1, batch_size=32)
    result = grid_search(spec, tiny_dataset, {"sample_k": [1]},
                         base_config=base, seed=0)
    text = result.render()
    assert "sample_k=1" in text and "Val AUC" in text


def test_empty_grid_rejected():
    with pytest.raises(ValueError):
        GridSearchResult([])
