"""Table/figure experiment modules on deliberately tiny configurations.

The full-scale versions live in ``benchmarks/``; these tests exercise the
same code paths (run + render) in seconds so regressions surface in the
unit suite.
"""

from __future__ import annotations


from repro.core import TrainConfig
from repro.experiments import (
    render_fig8,
    render_fig9,
    render_table5,
    render_table6,
    render_table7,
    render_table8,
    render_table9,
    render_table10,
    run_fig8,
    run_fig9,
    run_industry,
    run_table5,
    run_table6,
    run_table7,
    run_table10,
)

TINY = TrainConfig(epochs=1, inner_steps=2, batch_size=64, sample_k=1,
                   dr_steps=1, finetune_steps=2, dn_rounds=1)


def test_table5_tiny_run_and_render():
    results = run_table5(
        scale=0.25, seeds=(0,), config=TINY,
        datasets=("taobao10_sim",),
    )
    text = render_table5(results)
    assert "MLP+MAMDR" in text and "taobao10 RANK" in text


def test_table6_and_7_tiny():
    results = run_table6(scale=0.25, seeds=(0,), config=TINY,
                         datasets=("taobao10_sim",))
    assert "w/o DN+DR" in render_table6(results)
    result7 = run_table7(scale=0.25, seeds=(0,), config=TINY)
    text = render_table7(result7)
    assert "Prime Pantry" in text


def test_industry_tiny():
    dataset, result = run_industry(n_domains=6, total_samples=1500,
                                   seeds=(0,), config=TINY)
    assert set(result.mean_auc) == {
        "RAW", "MMOE", "CGC", "PLE", "RAW+Separate", "RAW+DN", "RAW+MAMDR",
    }
    assert "RAW+MAMDR" in render_table8(result)
    table9 = render_table9(dataset, result, top=3)
    assert "Top 3" in table9 and "Top 4" not in table9


def test_table10_tiny():
    results = run_table10(
        scale=0.25, seeds=(0,), config=TINY,
        models=("mlp",),
        frameworks=(("Alternate", "alternate"), ("MAMDR (DN+DR)", "mamdr")),
    )
    text = render_table10(results)
    assert "Alternate" in text and "mlp" in text


def test_fig8_tiny():
    series = run_fig8(scale=0.25, seeds=(0,), config=TINY,
                      sample_numbers=(0, 1))
    assert set(series) == {0, 1}
    assert "k=1" in render_fig8(series)


def test_fig9_tiny():
    grid = run_fig9(scale=0.25, seeds=(0,), config=TINY,
                    inner_lrs=(1e-2,), outer_lrs=(1.0, 0.5))
    assert set(grid) == {(1e-2, 1.0), (1e-2, 0.5)}
    text = render_fig9(grid)
    assert "alpha" in text


def test_fig_renders_are_grids():
    grid = {(0.1, 1.0): 0.7, (0.1, 0.5): 0.72, (0.01, 1.0): 0.71,
            (0.01, 0.5): 0.73}
    text = render_fig9(grid)
    lines = text.splitlines()
    assert len(lines) == 5  # title, header, rule, two alpha rows
