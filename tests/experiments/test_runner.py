"""Experiment runner and comparison results."""

from __future__ import annotations

import pytest

from repro.core import TrainConfig
from repro.experiments import (
    ComparisonResult,
    MethodSpec,
    run_comparison,
    run_comparison_averaged,
    run_method,
)
from tests.conftest import make_tiny_dataset

FAST = TrainConfig(epochs=1, inner_steps=2, batch_size=32, sample_k=1,
                   dr_steps=1, finetune_steps=2)


def test_run_method_end_to_end(tiny_dataset):
    spec = MethodSpec("MLP", model="mlp", framework="alternate")
    report = run_method(spec, tiny_dataset, config=FAST, seed=0)
    assert report.method == "MLP"
    assert len(report.per_domain) == tiny_dataset.n_domains


def test_config_overrides_applied(tiny_dataset):
    spec = MethodSpec("MLP", config_overrides={"epochs": 1})
    report = run_method(spec, tiny_dataset, config=FAST.updated(epochs=2), seed=0)
    assert report is not None  # smoke: overrides must not crash


def test_run_comparison_ranks(tiny_dataset):
    specs = [
        MethodSpec("A", model="mlp", framework="alternate"),
        MethodSpec("B", model="mlp", framework="separate"),
    ]
    result = run_comparison(specs, tiny_dataset, config=FAST, seed=0)
    assert set(result.reports) == {"A", "B"}
    ranks = result.rank
    assert sum(ranks.values()) == pytest.approx(
        tiny_dataset.n_domains and 3.0
    )  # 1+2 per domain averaged
    assert result.best_method() in {"A", "B"}
    rendered = result.render()
    assert "A" in rendered and "RANK" in rendered


def test_run_comparison_averaged_over_seeds():
    specs = [MethodSpec("MLP", model="mlp", framework="alternate")]
    result = run_comparison_averaged(
        specs, lambda seed: make_tiny_dataset(seed=seed), seeds=(1, 2),
        config=FAST,
    )
    assert isinstance(result, ComparisonResult)
    assert len(result.reports["MLP"].per_domain) == 3
    with pytest.raises(ValueError):
        run_comparison_averaged(specs, make_tiny_dataset, seeds=())


def test_summary_rows_order_and_types(tiny_dataset):
    specs = [MethodSpec("Only", model="mlp")]
    result = run_comparison(specs, tiny_dataset, config=FAST, seed=0)
    rows = result.summary_rows()
    assert rows[0][0] == "Only"
    assert isinstance(rows[0][1], float)
    assert rows[0][2] == 1.0
