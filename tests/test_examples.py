"""The example scripts stay importable and well-formed.

Full executions live outside the unit suite (they train for minutes); here
we import each script and check its structure, which catches API drift —
the most common way examples rot.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLE_FILES}
    assert {
        "quickstart",
        "custom_model",
        "sparse_domains",
        "distributed_training",
        "framework_shootout",
        "onboard_new_domain",
    } <= names


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_importable_with_main(path):
    module = load(path)
    assert callable(getattr(module, "main", None)), f"{path.stem} lacks main()"
    assert module.__doc__, f"{path.stem} lacks a docstring"
    assert "Run:" in module.__doc__


def test_custom_model_class_is_trainable(tiny_dataset, fast_config):
    """The custom model defined in the example genuinely works with MAMDR."""
    import numpy as np

    module = load(EXAMPLES_DIR / "custom_model.py")
    from repro.core import MAMDR
    from repro.metrics import evaluate_bank
    from repro.models import build_encoder

    rng = np.random.default_rng(0)
    model = module.TwoTowerInteraction(
        build_encoder(tiny_dataset, field_dim=8, rng=rng), rng
    )
    bank = MAMDR().fit(model, tiny_dataset, fast_config, seed=0)
    report = evaluate_bank(bank, tiny_dataset)
    assert len(report.per_domain) == tiny_dataset.n_domains
