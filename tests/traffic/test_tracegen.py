"""Traffic-trace generator: determinism, rate honesty, skew, adapters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.online.stream import EventStream, StreamConfig
from repro.traffic import TraceConfig, generate_trace, trace_from_stream

pytestmark = pytest.mark.traffic


def make_config(**overrides):
    base = dict(
        name="t", n_domains=4, n_users=120, n_items=80,
        duration=0.5, mean_qps=3000.0, slot_seconds=0.01, seed=3,
    )
    base.update(overrides)
    return TraceConfig(**base)


def test_trace_is_a_pure_function_of_its_config():
    first = generate_trace(make_config())
    second = generate_trace(make_config())
    assert np.array_equal(first.times, second.times)
    assert np.array_equal(first.users, second.users)
    assert np.array_equal(first.items, second.items)
    assert np.array_equal(first.domains, second.domains)


def test_different_seeds_give_different_traffic():
    first = generate_trace(make_config(seed=3))
    second = generate_trace(make_config(seed=4))
    assert not np.array_equal(first.times, second.times)


def test_timestamps_sorted_and_inside_horizon():
    trace = generate_trace(make_config(arrival="bursty",
                                       diurnal_amplitude=0.4))
    assert np.all(np.diff(trace.times) >= 0)
    assert trace.times[0] >= 0.0
    assert trace.times[-1] <= trace.horizon
    assert trace.times.dtype == np.float64


def test_realized_rate_tracks_mean_qps():
    # Long enough that Poisson noise stays within a few percent.
    trace = generate_trace(make_config(duration=2.0, mean_qps=5000.0))
    assert trace.offered_qps == pytest.approx(5000.0, rel=0.1)


def test_bursty_rate_normalization_still_honest():
    """Burst modulation must not inflate the time-averaged offered rate."""
    trace = generate_trace(make_config(
        duration=2.0, mean_qps=5000.0, arrival="bursty",
        burst_multiplier=8.0, burst_fraction=0.15,
    ))
    assert trace.offered_qps == pytest.approx(5000.0, rel=0.15)


def test_domain_mix_is_zipf_skewed():
    trace = generate_trace(make_config(duration=2.0, domain_skew=1.2))
    counts = trace.per_domain_counts()
    ordered = [counts[d] for d in range(trace.n_domains)]
    assert ordered[0] > ordered[-1] * 2
    assert ordered == sorted(ordered, reverse=True)


def test_at_rate_keeps_the_request_sequence_identical():
    trace = generate_trace(make_config())
    faster = trace.at_rate(2.0 * trace.offered_qps)
    assert np.array_equal(faster.users, trace.users)
    assert np.array_equal(faster.items, trace.items)
    assert np.array_equal(faster.domains, trace.domains)
    assert faster.offered_qps == pytest.approx(2.0 * trace.offered_qps)
    # Same inter-arrival *structure*, uniformly compressed.
    np.testing.assert_allclose(
        faster.interarrival_seconds() * 2.0,
        trace.interarrival_seconds(), rtol=1e-9, atol=1e-12,
    )


def test_head_truncates_consistently():
    trace = generate_trace(make_config())
    head = trace.head(32)
    assert len(head) == 32
    assert np.array_equal(head.users, trace.users[:32])
    assert np.array_equal(head.times, trace.times[:32])


def test_diurnal_curve_moves_load_within_the_day():
    trace = generate_trace(make_config(
        duration=2.0, diurnal_amplitude=0.8, diurnal_period=2.0,
    ))
    # First half-period is the sine peak, second half the trough.
    peak = int(np.sum(trace.times < 1.0))
    trough = len(trace) - peak
    assert peak > 1.3 * trough


def test_config_validation():
    with pytest.raises(ValueError):
        make_config(mean_qps=0.0)
    with pytest.raises(ValueError):
        make_config(arrival="lumpy")
    with pytest.raises(ValueError):
        make_config(diurnal_amplitude=1.0)
    with pytest.raises(ValueError):
        make_config(arrival="bursty", burst_multiplier=0.5)
    with pytest.raises(ValueError):
        make_config(slot_seconds=0.0)


def test_trace_from_stream_preserves_event_content():
    stream = EventStream(StreamConfig(
        n_domains=3, n_users=60, n_items=40, n_windows=3,
        window_events=60, seed=5,
    ))
    trace = trace_from_stream(stream, mean_qps=2000.0, seed=9)
    expected_users = np.concatenate(
        [stream.window(i).users for i in range(3)]
    )
    expected_domains = np.concatenate(
        [stream.window(i).domains for i in range(3)]
    )
    assert np.array_equal(trace.users, expected_users)
    assert np.array_equal(trace.domains, expected_domains)
    assert np.all(np.diff(trace.times) >= 0)
    assert trace.offered_qps == pytest.approx(2000.0, rel=0.35)
    # Seeded arrival assignment is replayable.
    again = trace_from_stream(stream, mean_qps=2000.0, seed=9)
    assert np.array_equal(trace.times, again.times)


def test_trace_from_stream_window_subset():
    stream = EventStream(StreamConfig(
        n_domains=3, n_users=60, n_items=40, n_windows=4,
        window_events=60, seed=5,
    ))
    trace = trace_from_stream(stream, mean_qps=1000.0, windows=(1, 3))
    assert len(trace) == 2 * 60
    assert np.array_equal(trace.users[:60], stream.window(1).users)


def test_trace_from_archive_matches_live_stream(tmp_path):
    """A columnar StreamArchive is a drop-in stream source: the trace
    built from the recorded file is byte-identical to the live one."""
    from repro.online.stream import StreamArchive, write_stream

    stream = EventStream(StreamConfig(
        n_domains=3, n_users=60, n_items=40, n_windows=3,
        window_events=60, seed=5,
    ))
    path = tmp_path / "stream.col"
    write_stream(path, stream)
    archive = StreamArchive.open(path)

    live = trace_from_stream(stream, mean_qps=2000.0, seed=9)
    replayed = trace_from_stream(archive, mean_qps=2000.0, seed=9)
    assert np.array_equal(live.times, replayed.times)
    assert np.array_equal(live.users, replayed.users)
    assert np.array_equal(live.items, replayed.items)
    assert np.array_equal(live.domains, replayed.domains)
    archive.close()
