"""Admission control: conservation, policies, deadlines, determinism."""

from __future__ import annotations

import pytest

from repro.traffic import AdmissionConfig, AdmissionController, DomainSLO

pytestmark = pytest.mark.traffic


def offered_burst(controller, n, domain=0, start=0.0, gap=1e-4):
    admitted = 0
    for i in range(n):
        admitted += controller.offer(i, domain, start + i * gap)
    return admitted


def test_queue_bound_is_enforced_by_drop_tail():
    controller = AdmissionController(AdmissionConfig(
        policy="drop_tail", default_slo=DomainSLO(max_queue=8),
    ))
    admitted = offered_burst(controller, 20)
    assert admitted == 8
    stats = controller.stats()
    assert stats["shed_by_reason"]["queue_full"] == 12
    assert stats["conserved"]


def test_conservation_invariant_holds_at_every_instant():
    controller = AdmissionController(AdmissionConfig(
        policy="fair", default_slo=DomainSLO(max_queue=6), total_queue=10,
    ))
    now = 0.0
    for i in range(200):
        now += 1e-4
        controller.offer(i, i % 4, now)
        assert controller.stats()["conserved"]
        if i % 5 == 4:
            controller.take(4, now)
            assert controller.stats()["conserved"]
    while controller.take(8, now + 1.0):
        pass
    stats = controller.stats()
    assert stats["conserved"]
    assert stats["queued"] == 0
    assert stats["offered"] == stats["accepted"] + stats["shed"]


def test_take_dispatches_oldest_domain_first_in_domain_pure_batches():
    controller = AdmissionController(AdmissionConfig(
        default_slo=DomainSLO(max_queue=16, deadline_ms=1e6),
    ))
    controller.offer(0, 2, 0.000)
    controller.offer(1, 1, 0.001)
    controller.offer(2, 2, 0.002)
    domain, batch = controller.take(8, 0.01)
    assert domain == 2
    assert batch == [0, 2]
    domain, batch = controller.take(8, 0.01)
    assert (domain, batch) == (1, [1])
    assert controller.take(8, 0.01) is None


def test_fair_policy_evicts_newest_of_longest_queue():
    controller = AdmissionController(AdmissionConfig(
        policy="fair", default_slo=DomainSLO(max_queue=32), total_queue=6,
    ))
    for i in range(5):
        controller.offer(i, 0, i * 1e-4)      # domain 0 hogs the budget
    controller.offer(5, 1, 5e-4)
    # Budget full: a tail-domain arrival wins room from the hog.
    assert controller.offer(6, 1, 6e-4)
    stats = controller.stats()
    assert stats["per_domain"][0]["shed"] == 1
    assert stats["shed_by_reason"]["evicted"] == 1
    # The evicted request was domain 0's newest (index 4): FIFO order of
    # the survivors is preserved.
    domain, batch = controller.take(8, 7e-4)
    assert domain == 0
    assert batch == [0, 1, 2, 3]
    assert stats["conserved"]


def test_fair_policy_sheds_the_arrival_when_its_own_queue_is_longest():
    controller = AdmissionController(AdmissionConfig(
        policy="fair", default_slo=DomainSLO(max_queue=32), total_queue=4,
    ))
    for i in range(4):
        controller.offer(i, 0, i * 1e-4)
    assert not controller.offer(4, 0, 4e-4)
    assert controller.stats()["shed_by_reason"]["budget"] == 1


def test_priority_policy_never_preempts_equal_or_better_tiers():
    config = AdmissionConfig(
        policy="priority",
        default_slo=DomainSLO(max_queue=32, tier=1),
        domain_slos={
            0: DomainSLO(max_queue=32, tier=0),   # premium
            2: DomainSLO(max_queue=32, tier=2),   # best-effort
        },
        total_queue=4,
    )
    controller = AdmissionController(config)
    controller.offer(0, 1, 0.0)
    controller.offer(1, 2, 1e-4)
    controller.offer(2, 1, 2e-4)
    controller.offer(3, 2, 3e-4)
    # Premium arrival preempts the worst (tier 2) queue's newest entry.
    assert controller.offer(4, 0, 4e-4)
    assert controller.stats()["per_domain"][2]["shed"] == 1
    # A best-effort arrival cannot preempt anyone (no strictly worse tier).
    assert not controller.offer(5, 2, 5e-4)
    stats = controller.stats()
    assert stats["shed_by_reason"]["evicted"] == 1
    assert stats["shed_by_reason"]["budget"] == 1
    assert stats["conserved"]


def test_deadline_shedding_at_dispatch():
    controller = AdmissionController(AdmissionConfig(
        default_slo=DomainSLO(p99_ms=10.0, max_queue=16),  # deadline 6ms
    ))
    controller.offer(0, 0, 0.000)
    controller.offer(1, 0, 0.005)
    taken = controller.take(4, 0.007)   # request 0 is 7ms old: expired
    assert taken == (0, [1])
    stats = controller.stats()
    assert stats["shed_by_reason"]["deadline"] == 1
    assert stats["conserved"]


def test_deadline_shedding_can_be_disabled():
    controller = AdmissionController(AdmissionConfig(
        default_slo=DomainSLO(p99_ms=10.0, max_queue=16),
        shed_deadline=False,
    ))
    controller.offer(0, 0, 0.0)
    assert controller.take(4, 10.0) == (0, [0])
    assert controller.stats()["shed"] == 0


def test_head_arrival_and_oldest_wait():
    controller = AdmissionController()
    assert controller.head_arrival() is None
    assert controller.oldest_wait(5.0) == 0.0
    controller.offer(0, 1, 0.002)
    controller.offer(1, 0, 0.001)
    assert controller.head_arrival() == 0.001
    assert controller.oldest_wait(0.004) == pytest.approx(0.003)


def test_identical_call_sequences_make_identical_decisions():
    def run():
        controller = AdmissionController(AdmissionConfig(
            policy="fair", default_slo=DomainSLO(p99_ms=5.0, max_queue=8),
            total_queue=20,
        ))
        decisions = []
        for i in range(300):
            now = i * 3e-5
            decisions.append(controller.offer(i, (i * 7) % 5, now))
            if i % 3 == 0:
                decisions.append(controller.take(4, now))
        return decisions, controller.stats()

    first, first_stats = run()
    second, second_stats = run()
    assert first == second
    assert first_stats == second_stats


def test_config_validation():
    with pytest.raises(ValueError):
        AdmissionConfig(policy="random")
    with pytest.raises(ValueError):
        DomainSLO(p99_ms=0.0)
    with pytest.raises(ValueError):
        DomainSLO(max_queue=0)
    with pytest.raises(ValueError):
        DomainSLO(deadline_ms=-1.0)
    with pytest.raises(ValueError):
        AdmissionConfig(total_queue=0)
