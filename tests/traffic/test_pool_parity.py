"""Multi-process pool: bit-parity with single-process serving, hot reload.

The acceptance property of the whole subsystem: every response a pool
worker produces — before, during and after a snapshot publish under load —
is bit-identical to what the single-process
:class:`~repro.serving.service.Predictor` returns for the same requests
under the generation the response reports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TrainConfig
from repro.models import build_model
from repro.serving.bench import make_serving_dataset, train_space
from repro.serving.service import Predictor
from repro.serving.snapshots import SnapshotStore
from repro.traffic import PoolError, PredictorPool, fork_available
from repro.traffic.loadbench import check_pool_parity
from repro.traffic.tracegen import TraceConfig, generate_trace

pytestmark = [
    pytest.mark.traffic,
    pytest.mark.skipif(
        not fork_available(), reason="pool requires the fork start method"
    ),
]


class PinnedStore:
    """A store view frozen at one snapshot (reference predictors)."""

    def __init__(self, snapshot):
        self._snapshot = snapshot

    def current(self):
        return self._snapshot


@pytest.fixture(scope="module")
def serving_setup():
    dataset = make_serving_dataset(n_domains=3, seed=1)
    model = build_model("mlp", dataset, seed=0)
    config = TrainConfig(
        epochs=1, batch_size=32, inner_steps=1, dr_steps=1, sample_k=1,
    )
    space_a = train_space(model, dataset, config, seed=0)
    # A genuinely different second space: without it, generation
    # attribution would be unprovable (any generation would "match").
    space_b = train_space(model, dataset, config, seed=101)
    store = SnapshotStore(keep=4)
    snapshot_a = store.publish(space_a)
    snapshot_b = store.publish(space_b)
    rng = np.random.default_rng(7)
    users = rng.integers(0, dataset.n_users, size=96).astype(np.int64)
    items = rng.integers(0, dataset.n_items, size=96).astype(np.int64)
    return dataset, model, snapshot_a, snapshot_b, users, items


def test_snapshots_genuinely_differ(serving_setup):
    _, model, snapshot_a, snapshot_b, users, items = serving_setup
    ref_a = Predictor(build_model("mlp", make_serving_dataset(3, seed=1),
                                  seed=0), PinnedStore(snapshot_a))
    scores_a = np.asarray(ref_a.predict_batch(users[:16], items[:16], 0))
    ref_b = Predictor(build_model("mlp", make_serving_dataset(3, seed=1),
                                  seed=0), PinnedStore(snapshot_b))
    scores_b = np.asarray(ref_b.predict_batch(users[:16], items[:16], 0))
    assert not np.array_equal(scores_a, scores_b)


def test_pool_scores_bit_identical_to_single_process(serving_setup):
    dataset, model, snapshot_a, _, users, items = serving_setup
    reference = Predictor(model, PinnedStore(snapshot_a))
    with PredictorPool(model, n_workers=2) as pool:
        pool.publish(snapshot_a)
        for domain in range(dataset.n_domains):
            pooled = pool.score(users[:32], items[:32], domain)
            reference.invalidate_caches()
            expected = reference.predict_batch(users[:32], items[:32], domain)
            assert np.array_equal(pooled, np.asarray(expected))


def test_hot_reload_under_load_is_generation_exact(serving_setup):
    """Publish mid-trace; every response matches its generation's reference.

    Batches are in flight when the reload lands (``wait=False`` rides the
    task queues), so the run genuinely exercises in-band flipping — and
    the check requires both generations to have produced responses.
    """
    dataset, model, snapshot_a, snapshot_b, _, _ = serving_setup
    trace = generate_trace(TraceConfig(
        name="parity", n_domains=dataset.n_domains,
        n_users=dataset.n_users, n_items=dataset.n_items,
        duration=0.2, mean_qps=2000.0, slot_seconds=0.01, seed=11,
    ))
    with PredictorPool(model, n_workers=2) as pool:
        report = check_pool_parity(
            pool, model, [snapshot_a, snapshot_b], trace, max_batch=16,
        )
    assert report["ok"], report
    assert report["mismatches"] == 0
    assert report["generations"] == [1, 2]
    assert report["batches"] > 2


def test_reload_wait_retires_superseded_segment(serving_setup):
    _, model, snapshot_a, snapshot_b, users, items = serving_setup
    with PredictorPool(model, n_workers=2) as pool:
        pool.publish(snapshot_a)
        assert sorted(pool.stats()["segments"]) == [1]
        pool.publish(snapshot_b)   # wait=True: all workers acked
        assert sorted(pool.stats()["segments"]) == [2]
        assert pool.generation == 2
        # And scoring proceeds on the new generation.
        pool.submit(0, 0, users[:8], items[:8])
        (message,) = pool.drain(expected=1)
        assert message[3] == 2


def test_pool_requires_a_published_snapshot(serving_setup):
    _, model, *_ = serving_setup
    with PredictorPool(model, n_workers=1) as pool:
        with pytest.raises(PoolError):
            pool.submit(0, 0, np.zeros(2, dtype=np.int64),
                        np.zeros(2, dtype=np.int64))


def test_worker_processes_are_real(serving_setup):
    import os

    _, model, snapshot_a, *_ = serving_setup
    with PredictorPool(model, n_workers=2) as pool:
        pool.publish(snapshot_a)
        pids = pool.worker_pids()
        assert len(set(pids)) == 2
        assert os.getpid() not in pids
