"""Virtual load replay: determinism, conservation, knee finding, SLOs."""

from __future__ import annotations

import pytest

from repro.traffic import (
    AdmissionConfig,
    DomainSLO,
    ServiceTimeModel,
    TraceConfig,
    find_knee,
    generate_trace,
    simulate_replay,
    sweep_saturation,
)

pytestmark = pytest.mark.traffic

# Fixed coefficients: tests must not depend on live timing calibration.
MODEL = ServiceTimeModel(base_seconds=150e-6, per_row_seconds=3e-6)


def make_trace(mean_qps=3000.0, duration=0.4, seed=5, **overrides):
    base = dict(
        name="lb", n_domains=4, n_users=100, n_items=60,
        duration=duration, mean_qps=mean_qps, slot_seconds=0.01, seed=seed,
    )
    base.update(overrides)
    return generate_trace(TraceConfig(**base))


def admission(policy="fair", p99_ms=20.0, max_queue=64, total=None):
    return AdmissionConfig(
        policy=policy,
        default_slo=DomainSLO(p99_ms=p99_ms, max_queue=max_queue),
        total_queue=total,
    )


def test_replay_is_deterministic_from_the_trace_seed():
    trace = make_trace()
    first = simulate_replay(trace, MODEL, n_workers=2, max_batch=16,
                            admission=admission())
    second = simulate_replay(trace, MODEL, n_workers=2, max_batch=16,
                             admission=admission())
    assert first == second
    assert first["decision_crc32"] == second["decision_crc32"]


def test_replay_conserves_requests_even_under_overload():
    capacity = MODEL.capacity_qps(2, 16)
    trace = make_trace().at_rate(3.0 * capacity)
    result = simulate_replay(trace, MODEL, n_workers=2, max_batch=16,
                             admission=admission(max_queue=8))
    assert result["conserved"]
    assert result["offered"] == result["accepted"] + result["shed"]
    assert result["shed_fraction"] > 0.2


def test_underloaded_replay_sheds_nothing_and_stays_fast():
    capacity = MODEL.capacity_qps(2, 16)
    trace = make_trace().at_rate(0.2 * capacity)
    result = simulate_replay(trace, MODEL, n_workers=2, max_batch=16,
                             admission=admission())
    assert result["shed"] == 0
    assert result["p99_ms"] is not None
    # At 20% load a batch rarely queues: p99 stays within a few service
    # times of the bare batch cost.
    assert result["p99_ms"] < 5.0 * MODEL.service_seconds(16) * 1e3


def test_latency_is_measured_from_intended_arrival():
    """Coordinated-omission honesty: one worker, far too much traffic —
    waiting time must show up in the percentiles."""
    capacity = MODEL.capacity_qps(1, 16)
    trace = make_trace().at_rate(2.0 * capacity)
    # No deadline shedding, deep queues: everything is eventually served,
    # so the backlog converts into latency.
    config = AdmissionConfig(
        default_slo=DomainSLO(p99_ms=1e6, max_queue=10_000),
        shed_deadline=False,
    )
    result = simulate_replay(trace, MODEL, n_workers=1, max_batch=16,
                             admission=config)
    assert result["shed"] == 0
    assert result["p99_ms"] > 20.0 * MODEL.service_seconds(16) * 1e3


def test_accepted_p99_stays_within_slo_under_2x_overload():
    """The overload acceptance property, on the virtual replay."""
    slo = DomainSLO(p99_ms=3.0, max_queue=64)
    config = AdmissionConfig(policy="fair", default_slo=slo)
    capacity = MODEL.capacity_qps(2, 16)
    trace = make_trace(duration=0.6).at_rate(2.0 * capacity)
    result = simulate_replay(trace, MODEL, n_workers=2, max_batch=16,
                             admission=config)
    assert result["shed_fraction"] > 0.1
    assert result["conserved"]
    # Deadline shedding bounds accepted wait at 0.6 * p99; service adds
    # at most one max_batch: structurally within the SLO.
    assert result["p99_ms"] <= slo.p99_ms


def test_more_workers_move_the_knee():
    trace = make_trace(duration=0.6)
    slow = sweep_saturation(trace, MODEL, n_workers=1, max_batch=16,
                            admission=admission(max_queue=16))
    fast = sweep_saturation(trace, MODEL, n_workers=4, max_batch=16,
                            admission=admission(max_queue=16))
    assert slow["knee_qps"] is not None and fast["knee_qps"] is not None
    assert fast["knee_qps"] > 2.0 * slow["knee_qps"]
    assert fast["capacity_bound_qps"] == pytest.approx(
        4.0 * slow["capacity_bound_qps"]
    )


def test_sweep_curve_is_ordered_and_annotated():
    trace = make_trace(duration=0.4)
    sweep = sweep_saturation(trace, MODEL, n_workers=2, max_batch=16,
                             admission=admission(max_queue=16))
    offered = [point["offered_qps"] for point in sweep["curve"]]
    assert offered == sorted(offered)
    assert all("p99_ms" in point and "shed_fraction" in point
               for point in sweep["curve"])
    assert all(point["conserved"] for point in sweep["curve"])


def test_find_knee_interpolates_the_shed_crossing():
    curve = [
        {"offered_qps": 100.0, "shed_fraction": 0.0, "p99_ms": 1.0},
        {"offered_qps": 200.0, "shed_fraction": 0.005, "p99_ms": 1.2},
        {"offered_qps": 300.0, "shed_fraction": 0.055, "p99_ms": 1.4},
    ]
    knee = find_knee(curve, max_shed=0.01)
    assert 200.0 < knee < 300.0
    assert knee == pytest.approx(200.0 + 100.0 * 0.005 / 0.05)


def test_find_knee_handles_all_good_and_all_bad():
    good = [{"offered_qps": 100.0, "shed_fraction": 0.0, "p99_ms": 1.0}]
    assert find_knee(good) == 100.0
    bad = [{"offered_qps": 100.0, "shed_fraction": 0.5, "p99_ms": 9.0}]
    assert find_knee(bad) is None


def test_find_knee_latency_cap():
    curve = [
        {"offered_qps": 100.0, "shed_fraction": 0.0, "p99_ms": 1.0},
        {"offered_qps": 200.0, "shed_fraction": 0.0, "p99_ms": 50.0},
    ]
    assert find_knee(curve) == 200.0
    assert find_knee(curve, latency_cap_ms=10.0) == 100.0


def test_service_model_validation_and_capacity():
    with pytest.raises(ValueError):
        ServiceTimeModel(base_seconds=0.0, per_row_seconds=1e-6)
    with pytest.raises(ValueError):
        ServiceTimeModel(base_seconds=1e-6, per_row_seconds=-1e-6)
    model = ServiceTimeModel(base_seconds=1e-4, per_row_seconds=1e-5)
    assert model.service_seconds(10) == pytest.approx(2e-4)
    assert model.capacity_qps(2, 10) == pytest.approx(2 * 10 / 2e-4)
