"""Shared fixtures: tiny datasets and a fast training config."""

from __future__ import annotations

import pytest

from repro.core import TrainConfig
from repro.data import DomainSpec, SyntheticConfig, generate_dataset


def make_tiny_dataset(feature_mode="trainable", n_domains=3, seed=1,
                      samples=(220, 160, 90)):
    """A small but trainable multi-domain dataset for unit tests."""
    specs = tuple(
        DomainSpec(f"T{i}", samples[i % len(samples)], 0.25 + 0.05 * i)
        for i in range(n_domains)
    )
    return generate_dataset(SyntheticConfig(
        name=f"tiny_{feature_mode}_{n_domains}",
        domains=specs,
        n_users=150,
        n_items=90,
        latent_dim=8,
        feature_mode=feature_mode,
        feature_dim=10,
        seed=seed,
    ))


@pytest.fixture(scope="session")
def tiny_dataset():
    """Trainable-embedding (Amazon-style) dataset, 3 domains."""
    return make_tiny_dataset("trainable")


@pytest.fixture(scope="session")
def tiny_fixed_dataset():
    """Fixed-feature (Taobao-style) dataset, 3 domains."""
    return make_tiny_dataset("fixed")


@pytest.fixture()
def fast_config():
    """A config small enough for per-test training."""
    return TrainConfig(
        epochs=2,
        batch_size=32,
        inner_steps=3,
        dr_steps=2,
        sample_k=1,
        finetune_steps=4,
    )
