"""Gradient-conflict probes: geometry math and dataset semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    conflict_rate,
    conflict_report,
    pairwise_cosines,
    pairwise_inner_products,
    per_domain_gradients,
)
from repro.models import build_model


def test_pairwise_matrices():
    grads = np.array([[1.0, 0.0], [0.0, 2.0], [-1.0, 0.0]])
    inner = pairwise_inner_products(grads)
    np.testing.assert_allclose(inner, [[1, 0, -1], [0, 4, 0], [-1, 0, 1]])
    cos = pairwise_cosines(grads)
    np.testing.assert_allclose(np.diag(cos), 1.0)
    assert cos[0, 2] == pytest.approx(-1.0)


def test_conflict_rate_counts_negative_pairs():
    inner = np.array([[1.0, -0.1, 0.2], [-0.1, 1.0, 0.3], [0.2, 0.3, 1.0]])
    # 2 negative off-diagonal entries of 6
    assert conflict_rate(inner) == pytest.approx(2 / 6)
    with pytest.raises(ValueError):
        conflict_rate(np.ones((1, 1)))


def test_per_domain_gradients_shape(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    grads = per_domain_gradients(model, tiny_dataset, np.random.default_rng(0))
    assert grads.shape == (tiny_dataset.n_domains, model.num_parameters())
    assert np.isfinite(grads).all()


def test_conflict_report_fields(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    report = conflict_report(model, tiny_dataset, np.random.default_rng(0))
    assert set(report) == {
        "conflict_rate", "mean_inner_product", "mean_cosine", "n_domains",
    }
    assert 0.0 <= report["conflict_rate"] <= 1.0
    assert -1.0 <= report["mean_cosine"] <= 1.0
    assert report["n_domains"] == tiny_dataset.n_domains


def test_zero_conflict_dataset_has_aligned_gradients():
    """Control experiment: with conflict=0 and no per-domain popularity,
    per-domain gradients at init are strongly aligned; turning both on
    lowers the alignment."""
    from repro.data import DomainSpec, SyntheticConfig, generate_dataset

    def build(conflict, dev):
        return generate_dataset(SyntheticConfig(
            name=f"ctrl_{conflict}_{dev}",
            domains=tuple(DomainSpec(f"C{i}", 300, 0.3) for i in range(4)),
            n_users=200, n_items=120, latent_dim=8,
            conflict=conflict, domain_popularity_strength=dev, seed=9,
        ))

    aligned = build(0.0, 0.0)
    conflicted = build(0.9, 1.0)
    model_a = build_model("mlp", aligned, seed=1)
    model_c = build_model("mlp", conflicted, seed=1)
    rng = np.random.default_rng(0)
    report_a = conflict_report(model_a, aligned, rng)
    report_c = conflict_report(model_c, conflicted, rng)
    assert report_a["mean_cosine"] > report_c["mean_cosine"]
