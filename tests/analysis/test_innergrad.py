"""InnerGrad / alignment probes (Section IV-C empirics)."""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    alignment_objective,
    alignment_trajectory,
    mean_domain_loss,
)
from repro.core import TrainConfig, domain_negotiation_epoch
from repro.core.trainer import make_inner_optimizer
from repro.models import build_model
from repro.utils.seeding import spawn_rng


def test_alignment_objective_finite(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    value = alignment_objective(model, tiny_dataset, np.random.default_rng(0))
    assert np.isfinite(value)


def test_mean_domain_loss_positive(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    loss = mean_domain_loss(model, tiny_dataset)
    assert loss > 0.0


def test_trajectory_records_all_epochs(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    config = TrainConfig(epochs=1, inner_steps=2, batch_size=32)
    optimizer = make_inner_optimizer(model, config)
    rng = spawn_rng(0, "traj")
    shared = {"state": model.state_dict()}

    def epoch_fn(_):
        shared["state"] = domain_negotiation_epoch(
            model, tiny_dataset, shared["state"], config, rng,
            optimizer=optimizer,
        )
        model.load_state_dict(shared["state"])

    records = alignment_trajectory(
        model, tiny_dataset, epoch_fn, epochs=3, rng=np.random.default_rng(1)
    )
    assert [r["epoch"] for r in records] == [0, 1, 2, 3]
    assert all({"mean_loss", "alignment", "val_auc"} <= set(r) for r in records)


def test_dn_training_reduces_loss(tiny_dataset):
    """DN descends the joint objective 𝒪_M (the first term of Eq. 18)."""
    model = build_model("mlp", tiny_dataset, seed=0)
    config = TrainConfig(epochs=1, inner_steps=None, batch_size=32)
    optimizer = make_inner_optimizer(model, config)
    rng = spawn_rng(0, "loss")
    shared = model.state_dict()
    start = mean_domain_loss(model, tiny_dataset)
    for _ in range(5):
        shared = domain_negotiation_epoch(
            model, tiny_dataset, shared, config, rng, optimizer=optimizer
        )
    model.load_state_dict(shared)
    assert mean_domain_loss(model, tiny_dataset) < start
