"""Micro-batcher flush policy: size trigger, wait trigger, per-domain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import BatchingPolicy, MicroBatcher

pytestmark = pytest.mark.serving


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class RecordingScorer:
    """Scores a batch as user + item/1000 so results are attributable."""

    def __init__(self):
        self.batches = []

    def __call__(self, users, items, domain):
        self.batches.append((users.copy(), items.copy(), domain))
        return users + items / 1000.0


def make_batcher(max_batch_size=3, max_wait_us=1000.0):
    clock = FakeClock()
    scorer = RecordingScorer()
    batcher = MicroBatcher(
        BatchingPolicy(max_batch_size=max_batch_size, max_wait_us=max_wait_us),
        score_batch=scorer, clock=clock,
    )
    return batcher, scorer, clock


def test_size_trigger_flushes_exactly_at_capacity():
    batcher, scorer, _ = make_batcher(max_batch_size=3)
    first = [batcher.submit(u, 10 + u, 0) for u in range(2)]
    assert all(not r.done for r in first)
    assert batcher.pending() == 2
    last = batcher.submit(2, 12, 0)
    assert last.done and all(r.done for r in first)
    assert len(scorer.batches) == 1
    users, items, domain = scorer.batches[0]
    np.testing.assert_array_equal(users, [0, 1, 2])
    assert domain == 0
    assert first[1].result == pytest.approx(1.011)
    assert batcher.size_flushes == 1 and batcher.wait_flushes == 0


def test_wait_trigger_flushes_stale_queue_on_poll():
    batcher, scorer, clock = make_batcher(max_batch_size=100,
                                          max_wait_us=1000.0)
    request = batcher.submit(4, 40, 1)
    clock.advance(0.0005)
    assert batcher.poll() == 0          # younger than max_wait: stays queued
    assert not request.done
    clock.advance(0.0006)               # now 1.1ms old
    assert batcher.poll() == 1
    assert request.done
    assert request.result == pytest.approx(4.04)
    assert batcher.wait_flushes == 1
    # latency spans enqueue -> flush on the injected clock
    assert request.latency == pytest.approx(0.0011)


def test_queues_are_per_domain():
    batcher, scorer, _ = make_batcher(max_batch_size=2)
    batcher.submit(0, 0, 0)
    batcher.submit(1, 1, 1)
    assert batcher.pending() == 2       # neither domain reached capacity
    batcher.submit(2, 2, 0)             # domain 0 flushes alone
    assert len(scorer.batches) == 1
    assert scorer.batches[0][2] == 0
    assert batcher.pending() == 1


def test_wait_timer_starts_at_first_request_of_batch():
    batcher, _, clock = make_batcher(max_batch_size=100, max_wait_us=1000.0)
    batcher.submit(0, 0, 0)
    clock.advance(0.0008)
    batcher.submit(1, 1, 0)             # does not reset the deadline
    clock.advance(0.0003)
    assert batcher.poll() == 1          # oldest request is 1.1ms old


def test_stale_queue_flushes_on_submit_to_another_domain():
    """Starvation fix: an overdue sub-batch must not wait for a poll."""
    batcher, scorer, clock = make_batcher(max_batch_size=100,
                                          max_wait_us=1000.0)
    starved = batcher.submit(7, 70, 0)
    clock.advance(0.0015)               # domain-0 queue is now overdue
    batcher.submit(1, 10, 1)            # traffic only ever hits domain 1
    assert starved.done                 # flushed by the submit, no poll
    assert starved.result == pytest.approx(7.07)
    assert batcher.wait_flushes == 1
    assert scorer.batches[0][2] == 0


def test_next_deadline_drives_idle_flush():
    """With no arrivals at all, next_deadline + poll flushes at max_wait."""
    batcher, _, clock = make_batcher(max_batch_size=100, max_wait_us=1000.0)
    assert batcher.next_deadline() is None
    clock.advance(0.25)
    request = batcher.submit(3, 30, 2)
    deadline = batcher.next_deadline()
    assert deadline == pytest.approx(0.25 + 0.001)
    clock.advance(deadline - clock.now)  # idle: clock runs, nothing arrives
    assert batcher.poll() == 1
    assert request.done
    assert batcher.next_deadline() is None


def test_next_deadline_tracks_oldest_queue():
    batcher, _, clock = make_batcher(max_batch_size=100, max_wait_us=1000.0)
    batcher.submit(0, 0, 0)
    clock.advance(0.0004)
    batcher.submit(1, 1, 1)
    assert batcher.next_deadline() == pytest.approx(0.001)  # domain 0's


def test_drain_force_flushes_everything():
    batcher, scorer, _ = make_batcher(max_batch_size=100)
    requests = [batcher.submit(u, u, u % 2) for u in range(5)]
    assert batcher.drain() == 2         # one forced flush per domain
    assert all(r.done for r in requests)
    assert batcher.pending() == 0
    assert batcher.forced_flushes == 2


def test_stats_accounting():
    batcher, _, clock = make_batcher(max_batch_size=2, max_wait_us=100.0)
    batcher.submit(0, 0, 0)
    batcher.submit(1, 1, 0)             # size flush
    batcher.submit(2, 2, 1)
    clock.advance(1.0)
    batcher.poll()                      # wait flush
    stats = batcher.stats()
    assert stats["requests"] == 3
    assert stats["batches"] == 2
    assert stats["size_flushes"] == 1
    assert stats["wait_flushes"] == 1
    assert stats["rows_scored"] == 3
    assert stats["mean_batch_size"] == pytest.approx(1.5)


def test_policy_validation():
    with pytest.raises(ValueError):
        BatchingPolicy(max_batch_size=0)
    with pytest.raises(ValueError):
        BatchingPolicy(max_wait_us=-1.0)
