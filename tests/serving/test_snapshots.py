"""Snapshot store: COW materialization, atomic hot-swap, persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DomainParameterSpace
from repro.models import build_model
from repro.nn import SerializationError
from repro.nn.state import state_allclose, zeros_like_state
from repro.serving import SnapshotStore

from tests.conftest import make_tiny_dataset

pytestmark = pytest.mark.serving


@pytest.fixture(scope="module")
def dataset():
    return make_tiny_dataset("trainable")


@pytest.fixture()
def space(dataset):
    model = build_model("mlp", dataset, seed=0)
    space = DomainParameterSpace(model, dataset.n_domains)
    # Give domain 1 a real delta on one dense parameter; everything else
    # stays at zero so COW has structure to exploit.
    delta = zeros_like_state(space.shared)
    name = next(n for n in delta if "body" in n)
    delta[name] = delta[name] + 0.25
    space.set_delta(1, delta)
    return space


def test_publish_materializes_combined_states(space):
    store = SnapshotStore()
    snapshot = store.publish(space)
    assert snapshot.version == 1
    for domain in range(space.n_domains):
        assert state_allclose(
            dict(snapshot.state_for(domain)), dict(space.combined(domain))
        )


def test_cow_zero_delta_entries_alias_shared(space):
    snapshot = SnapshotStore().publish(space)
    shared = snapshot.default_state
    # Domain 0 has an all-zero delta: every entry aliases θ_S.
    for name, value in snapshot.state_for(0).items():
        assert value is shared[name]
    # Domain 1 diverges on exactly one parameter.
    diverged = [
        name for name, value in snapshot.state_for(1).items()
        if value is not shared[name]
    ]
    assert len(diverged) == 1
    stats = snapshot.cow_stats()
    assert stats["copied_arrays"] == 1
    assert stats["bytes_saved"] > 0


def test_snapshot_arrays_are_frozen_and_space_is_untouched(space):
    before = {name: value.copy() for name, value in space.shared.items()}
    snapshot = SnapshotStore().publish(space)
    for state in [snapshot.default_state] + [
        snapshot.state_for(d) for d in range(space.n_domains)
    ]:
        for value in state.values():
            assert not value.flags.writeable
    # The space's own arrays stay writable (training continues after
    # publish) and unchanged.
    for name, value in space.shared.items():
        assert value.flags.writeable
        np.testing.assert_array_equal(value, before[name])


def test_hot_swap_is_atomic_for_pinned_readers(space):
    """A reader that pinned current() keeps a complete, immutable version."""
    store = SnapshotStore()
    store.publish(space)
    pinned = store.current()
    pinned_states = {
        d: {n: v.copy() for n, v in pinned.state_for(d).items()}
        for d in range(space.n_domains)
    }
    # Mutate the space (training advanced) and publish mid-"batch".
    space.set_shared({n: v + 1.0 for n, v in space.shared.items()})
    store.publish(space)
    assert store.current().version == 2
    assert pinned.version == 1
    for d in range(space.n_domains):
        for name, value in pinned.state_for(d).items():
            np.testing.assert_array_equal(value, pinned_states[d][name])


def test_rollback_and_retention(space):
    store = SnapshotStore(keep=2)
    store.publish(space)
    store.publish(space)
    store.publish(space)
    assert store.versions() == [2, 3]
    with pytest.raises(KeyError):
        store.get(1)
    store.rollback(2)
    assert store.version == 2


def test_current_before_publish_raises():
    with pytest.raises(LookupError):
        SnapshotStore().current()


def test_save_load_round_trip(tmp_path, space):
    store = SnapshotStore()
    store.publish(space)
    path = tmp_path / "snapshot.npz"
    store.save(path)
    fresh = SnapshotStore()
    loaded = fresh.load(path)
    for domain in range(space.n_domains):
        assert state_allclose(
            dict(loaded.state_for(domain)), dict(space.combined(domain))
        )
    # value-equality COW on load: zero-delta domains alias the default.
    shared = loaded.default_state
    assert all(v is shared[n] for n, v in loaded.state_for(0).items())


def test_load_rejects_corrupt_archive(tmp_path, space):
    store = SnapshotStore()
    store.publish(space)
    path = tmp_path / "snapshot.npz"
    store.save(path)
    # Forge a tampered archive: same keys, one array changed, stale header.
    with np.load(path) as archive:
        payload = {k: archive[k].copy() for k in archive.files}
    victim = next(k for k in payload if k != "__repro_meta__")
    payload[victim] = payload[victim] + 1e-3
    np.savez(path, **payload)
    with pytest.raises(SerializationError, match="checksum"):
        SnapshotStore().load(path)


def test_load_requires_integrity_header(tmp_path, space):
    store = SnapshotStore()
    store.publish(space)
    path = tmp_path / "snapshot.npz"
    store.save(path)
    with np.load(path) as archive:
        payload = {
            k: archive[k].copy() for k in archive.files
            if k != "__repro_meta__"
        }
    np.savez(path, **payload)
    with pytest.raises(SerializationError, match="header"):
        SnapshotStore().load(path)


def test_static_row_ids_rank_by_frequency(space):
    counts = np.array([0, 5, 2, 9, 0, 1])
    name = next(iter(space.shared))
    snapshot = SnapshotStore().publish(space, access_counts={name: counts})
    np.testing.assert_array_equal(
        snapshot.static_row_ids(name, 3), [1, 2, 3]
    )
    # zero-count rows are never pinned even with spare capacity
    np.testing.assert_array_equal(
        snapshot.static_row_ids(name, 10), [1, 2, 3, 5]
    )
    assert snapshot.static_row_ids("unknown", 3).size == 0


# ----------------------------------------------------------------------
# Retention vs. rollback (the online-publisher contract)
# ----------------------------------------------------------------------
def test_retention_never_evicts_served_version(space):
    """The currently-served version survives any amount of retention
    pressure — even when it is the oldest retained version (post
    rollback) and the budget is a single slot."""
    store = SnapshotStore(keep=1)
    store.publish(space)                 # v1
    store.publish(space)                 # v2
    store.publish(space)                 # v3
    store.rollback(2)                    # serve the old anchor
    assert store.version == 2
    assert 2 in store.versions()
    snapshot = store.current()
    # readers pinned on v2 keep a live, retained version throughout
    assert store.get(2) is snapshot


def test_publish_during_rollback_keeps_baseline_retained(space):
    """Regression: canary publish on top of a rolled-back store with
    keep=1 must leave the rollback target available for the next
    rollback.  Before the rollback-anchor fix, _prune evicted it."""
    store = SnapshotStore(keep=1)
    store.publish(space)                 # v1 (served)
    store.publish(space)                 # v2: canary candidate
    # Gate fails: publisher rolls back to v1.
    store.rollback(1)
    assert store.version == 1
    # Next window's canary publishes while v1 is being served.
    store.publish(space)                 # v3
    assert store.version == 3
    # v1 must still be retained — a second gate failure rolls back again.
    store.rollback(1)
    assert store.version == 1
    assert 1 in store.versions()


def test_prune_does_not_pin_unrelated_versions_behind_anchor(space):
    """Protected versions are skipped, not loop-breaks: old unprotected
    versions still get pruned even when an anchor sits before them."""
    store = SnapshotStore(keep=2)
    store.publish(space)                 # v1
    store.publish(space)                 # v2
    store.rollback(1)                    # current=v1, previous=v2
    store.publish(space)                 # v3: previous=v1
    store.publish(space)                 # v4: previous=v3
    # Budget 2: v1 (old) is now unprotected and must go; v3 (anchor) and
    # v4 (current) stay.
    assert store.versions() == [3, 4]


# ----------------------------------------------------------------------
# Shared-memory arena (cross-process COW)
# ----------------------------------------------------------------------
def test_shared_arena_round_trip_preserves_bits_and_aliasing(space):
    from repro.serving import SharedSnapshotArena

    store = SnapshotStore()
    snapshot = store.publish(
        space, access_counts={"user_emb.weight": np.arange(5)}
    )
    arena = SharedSnapshotArena.materialize(snapshot, generation=3)
    attached = SharedSnapshotArena.attach(arena.manifest)
    try:
        mirror = attached.snapshot
        assert attached.generation == 3
        assert mirror.version == snapshot.version
        for domain in snapshot.domains:
            for name, value in snapshot.state_for(domain).items():
                twin = mirror.state_for(domain)[name]
                assert np.array_equal(twin, value)
                assert not twin.flags.writeable
        # COW survives the process boundary: the same aliased/copied split.
        assert mirror.cow_stats() == snapshot.cow_stats()
        # Aliased entries are literally one view, not n_domains views.
        zero_delta = next(
            name for name in snapshot.default_state
            if snapshot.states[0][name] is snapshot.default_state[name]
        )
        assert mirror.states[0][zero_delta] is mirror.default_state[zero_delta]
    finally:
        del mirror, twin
        assert attached.close()
        arena.unlink()


def test_shared_arena_packs_unique_arrays_once(space):
    from repro.serving import SharedSnapshotArena

    snapshot = SnapshotStore().publish(space)
    arena = SharedSnapshotArena.materialize(snapshot, generation=1)
    try:
        unique = {id(v) for state in snapshot.states.values()
                  for v in state.values()}
        unique |= {id(v) for v in snapshot.default_state.values()}
        assert len(arena.manifest["arrays"]) == len(unique)
        total = sum(
            v for state in [snapshot.default_state, *snapshot.states.values()]
            for v in [sum(a.nbytes for a in state.values())]
        )
        # Aliasing means the segment is far smaller than the naive sum.
        assert arena.nbytes < total
    finally:
        arena.unlink()


def test_shared_arena_only_owner_unlinks(space):
    from repro.serving import SharedSnapshotArena

    snapshot = SnapshotStore().publish(space)
    arena = SharedSnapshotArena.materialize(snapshot, generation=1)
    attached = SharedSnapshotArena.attach(arena.manifest)
    with pytest.raises(RuntimeError):
        attached.unlink()
    assert attached.close()
    arena.unlink()


def test_shared_arena_close_reports_pinned_views(space):
    from repro.serving import SharedSnapshotArena

    snapshot = SnapshotStore().publish(space)
    arena = SharedSnapshotArena.materialize(snapshot, generation=1)
    attached = SharedSnapshotArena.attach(arena.manifest)
    pinned = attached.snapshot.state_for(0)
    name, view = next(iter(pinned.items()))
    assert not attached.close()          # a live view pins the buffer
    del pinned, view
    assert attached.close()              # released once views die
    arena.unlink()
