"""Serving parity: the online path is bit-identical to offline scoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DomainParameterSpace
from repro.models import build_model
from repro.serving import BatchingPolicy, Predictor, ServingService, SnapshotStore
from repro.utils.seeding import spawn_rng

from tests.conftest import make_tiny_dataset

pytestmark = pytest.mark.serving


@pytest.fixture(scope="module")
def dataset():
    return make_tiny_dataset("trainable")


def make_space(model, n_domains, seed=7, scale=0.05):
    """A parameter space with distinct non-zero deltas per domain."""
    rng = spawn_rng(seed, "serving-parity", "deltas")
    space = DomainParameterSpace(model, n_domains)
    for domain in range(n_domains):
        space.set_delta(domain, {
            name: rng.normal(scale=scale, size=value.shape)
            for name, value in space.shared.items()
        })
    return space


def make_queries(dataset, n=24, seed=3):
    rng = spawn_rng(seed, "serving-parity", "queries")
    users = rng.integers(0, dataset.n_users, size=n).astype(np.int64)
    items = rng.integers(0, dataset.n_items, size=n).astype(np.int64)
    return users, items


def offline_scores(dataset, space, users, items, domain, seed=0):
    """Reference path: ``load_combined`` into a fresh model, then forward."""
    from repro.data.batching import Batch

    model = build_model("mlp", dataset, seed=seed)
    space.load_combined(model, domain)
    batch = Batch(users, items, np.zeros(len(users)), domain)
    return model.predict(batch)


def test_predict_batch_bit_identical_per_domain(dataset):
    model = build_model("mlp", dataset, seed=0)
    space = make_space(model, dataset.n_domains)
    predictor = Predictor(model, SnapshotStore())
    predictor._store.publish(space)
    users, items = make_queries(dataset)
    for domain in range(dataset.n_domains):
        served = predictor.predict_batch(users, items, domain)
        expected = offline_scores(dataset, space, users, items, domain)
        np.testing.assert_array_equal(served, expected)


def test_single_predict_matches_batch_path(dataset):
    model = build_model("mlp", dataset, seed=0)
    space = make_space(model, dataset.n_domains)
    predictor = Predictor(model, SnapshotStore())
    predictor._store.publish(space)
    users, items = make_queries(dataset, n=4)
    expected = offline_scores(dataset, space, users, items, 1)
    for position in range(len(users)):
        assert predictor.predict(
            users[position], items[position], 1
        ) == expected[position]


def test_full_path_equals_row_path(dataset):
    model = build_model("mlp", dataset, seed=0)
    space = make_space(model, dataset.n_domains)
    store = SnapshotStore()
    store.publish(space)
    row = Predictor(model, store, use_row_cache=True)
    full = Predictor(model, store, use_row_cache=False)
    users, items = make_queries(dataset)
    for domain in range(dataset.n_domains):
        np.testing.assert_array_equal(
            row.predict_batch(users, items, domain),
            full.predict_batch(users, items, domain),
        )


def test_parity_immediately_after_hot_reload(dataset):
    model = build_model("mlp", dataset, seed=0)
    space = make_space(model, dataset.n_domains)
    service = ServingService(model)
    service.publish(space, dataset=dataset)
    users, items = make_queries(dataset)
    service.predict_batch(users, items, 0)  # warm version 1 state + caches

    # Training advanced: new shared weights and deltas, hot reload.
    space.set_shared({n: v + 0.125 for n, v in space.shared.items()})
    space.set_delta(2, {
        n: v * 2.0 for n, v in space.delta(2).items()
    })
    service.reload(space, dataset=dataset)
    assert service.store.version == 2
    for domain in range(dataset.n_domains):
        served = service.predict_batch(users, items, domain)
        expected = offline_scores(dataset, space, users, items, domain)
        np.testing.assert_array_equal(served, expected)


def test_batched_path_matches_offline(dataset):
    model = build_model("mlp", dataset, seed=0)
    space = make_space(model, dataset.n_domains)
    service = ServingService(
        model, policy=BatchingPolicy(max_batch_size=5, max_wait_us=1e6)
    )
    service.publish(space)
    users, items = make_queries(dataset, n=18)
    rng = spawn_rng(11, "serving-parity", "domains")
    domains = rng.integers(0, dataset.n_domains, size=len(users))
    requests = [
        service.submit(users[i], items[i], int(domains[i]))
        for i in range(len(users))
    ]
    service.drain()
    assert all(request.done for request in requests)
    for domain in range(dataset.n_domains):
        mask = domains == domain
        if not mask.any():
            continue
        served = np.array(
            [r.result for r, m in zip(requests, mask) if m]
        )
        expected = offline_scores(
            dataset, space, users[mask], items[mask], domain
        )
        np.testing.assert_array_equal(served, expected)


def test_queued_requests_never_see_a_half_published_version(dataset):
    """Requests queued across a publish are scored wholly under one version."""
    model = build_model("mlp", dataset, seed=0)
    space = make_space(model, dataset.n_domains)
    service = ServingService(
        model, policy=BatchingPolicy(max_batch_size=100, max_wait_us=1e6)
    )
    service.publish(space)
    users, items = make_queries(dataset, n=10)
    requests = [
        service.submit(users[i], items[i], 1) for i in range(len(users))
    ]
    # A publish lands while the batch is still queued.
    space.set_shared({n: v - 0.5 for n, v in space.shared.items()})
    service.reload(space)
    service.drain()
    served = np.array([request.result for request in requests])
    # The flush pinned exactly one snapshot: all rows match version 2,
    # none are a mixture of old and new parameters.
    expected_v2 = offline_scores(dataset, space, users, items, 1)
    np.testing.assert_array_equal(served, expected_v2)


def test_fixed_feature_models_serve_via_full_path(dataset):
    """Models without id-embedding tables fall back to full-state loads."""
    fixed = make_tiny_dataset("fixed")
    model = build_model("mlp", fixed, seed=0)
    space = make_space(model, fixed.n_domains)
    predictor = Predictor(model, SnapshotStore())
    assert predictor.field_map == {}
    assert not predictor.use_row_cache
    predictor._store.publish(space)
    users, items = make_queries(fixed)
    for domain in range(fixed.n_domains):
        served = predictor.predict_batch(users, items, domain)
        offline_model = build_model("mlp", fixed, seed=0)
        space.load_combined(offline_model, domain)
        from repro.data.batching import Batch

        expected = offline_model.predict(
            Batch(users, items, np.zeros(len(users)), domain)
        )
        np.testing.assert_array_equal(served, expected)


def test_unknown_field_map_parameter_rejected(dataset):
    model = build_model("mlp", dataset, seed=0)
    with pytest.raises(KeyError, match="unknown parameters"):
        Predictor(model, SnapshotStore(), field_map={"nope.weight": "users"})


def test_service_stats_shape(dataset):
    model = build_model("mlp", dataset, seed=0)
    space = make_space(model, dataset.n_domains)
    service = ServingService(model)
    service.publish(space)
    users, items = make_queries(dataset, n=8)
    service.predict_batch(users, items, 0)
    stats = service.stats()
    assert stats["version"] == 1
    assert stats["latency"]["count"] == 8
    assert set(stats["latency"]) >= {"p50_ms", "p95_ms", "p99_ms"}
    assert stats["batcher"]["requests"] == 0  # sync path bypasses batcher
    service.reset_stats()
    assert service.stats()["latency"] == {"count": 0}
