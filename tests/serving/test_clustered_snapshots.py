"""Snapshot publishing through the clustered parameter backend.

The COW contract at scale: publishing a clustered space materializes one
state per delta-sharing *group* (not per domain), tail members of a
cluster literally share the state object, and hot-swap/rollback behave
exactly as with the dense backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ClusteredDomainStore,
    ClusterPlan,
    DomainParameterSpace,
)
from repro.models import build_model
from repro.nn.state import state_allclose, state_scale
from repro.serving import ServingService, SnapshotStore

from tests.conftest import make_tiny_dataset

pytestmark = pytest.mark.serving


@pytest.fixture(scope="module")
def dataset():
    return make_tiny_dataset("trainable", n_domains=4)


@pytest.fixture()
def space(dataset):
    """Two clusters of two; domain 0 is a head with its own residual."""
    model = build_model("mlp", dataset, seed=0)
    plan = ClusterPlan(
        assignments=(0, 0, 1, 1), n_clusters=2, head_domains={0},
    )
    space = DomainParameterSpace(
        model, dataset.n_domains,
        store=lambda shared: ClusteredDomainStore(shared, plan),
    )
    # cluster 1 carries a shared delta; cluster 0's tail stays at zero
    space.apply_delta(space.groups()[1], state_scale(space.shared, 0.5))
    space.set_delta(0, state_scale(space.shared, 0.25))
    return space


def test_publish_matches_materialization(space):
    snapshot = SnapshotStore().publish(space)
    for domain in range(space.n_domains):
        assert state_allclose(
            dict(snapshot.state_for(domain)), dict(space.materialize(domain))
        )


def test_tail_members_share_one_state_object(space):
    snapshot = SnapshotStore().publish(space)
    # cluster 1's tail (domains 2, 3) share every array
    for name, value in snapshot.state_for(2).items():
        assert value is snapshot.state_for(3)[name]
    stats = snapshot.cow_stats()
    # one state per group: c0 tail, c1 tail, head d0
    assert stats["unique_states"] == 3


def test_zero_delta_cluster_aliases_shared(space):
    snapshot = SnapshotStore().publish(space)
    shared = snapshot.default_state
    # domain 1 (cluster 0 tail, all-zero delta) aliases θ_S entirely
    for name, value in snapshot.state_for(1).items():
        assert value is shared[name]
    # diverged states are frozen copies, not live training arrays
    for value in snapshot.state_for(2).values():
        assert not value.flags.writeable


def test_copied_bytes_charge_each_unique_state_once(space):
    snapshot = SnapshotStore().publish(space)
    stats = snapshot.cow_stats()
    shared = snapshot.default_state
    # expected: every non-aliased array of every *unique* state, once —
    # the cluster state is not charged once per tail member
    unique = {
        id(value): value.nbytes
        for domain in range(space.n_domains)
        for name, value in snapshot.state_for(domain).items()
        if value is not shared[name]
    }
    assert stats["copied_bytes"] == sum(unique.values()) > 0


def test_hot_swap_and_rollback_through_clustered_store(space, dataset):
    service = ServingService(build_model("mlp", dataset, seed=0))
    first = service.publish(space, dataset=dataset)
    users = np.array([0, 1, 2], dtype=np.int64)
    items = np.array([0, 1, 2], dtype=np.int64)
    before = service.predict_batch(users, items, 2)

    # training advances the cluster delta; republish = hot swap
    space.apply_delta(space.groups()[1], state_scale(space.shared, 0.9))
    second = service.publish(space, dataset=dataset)
    assert second.version == first.version + 1
    after = service.predict_batch(users, items, 2)
    assert not np.array_equal(before, after)

    # rollback restores the old scores bit for bit
    service.store.rollback(first.version)
    rolled = service.predict_batch(users, items, 2)
    np.testing.assert_array_equal(rolled, before)


def test_serving_parity_with_offline_materialization(space, dataset):
    service = ServingService(build_model("mlp", dataset, seed=0))
    service.publish(space, dataset=dataset)
    probe = build_model("mlp", dataset, seed=0)
    from repro.data import sample_batch
    from repro.utils.seeding import spawn_rng

    rng = spawn_rng(0, "clustered-parity")
    for domain in range(dataset.n_domains):
        table = dataset.domain(domain).test
        batch = sample_batch(table, domain, min(16, len(table)), rng)
        served = service.predict_batch(batch.users, batch.items, domain)
        space.load_combined(probe, domain)
        np.testing.assert_array_equal(served, probe.predict(batch))
