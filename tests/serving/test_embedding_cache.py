"""Serve-side embedding cache: static pinning, LRU order, counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import ServingEmbeddingCache, training_access_counts

from tests.conftest import make_tiny_dataset

pytestmark = pytest.mark.serving

TABLE = np.arange(40.0).reshape(10, 4)


class CountingSource:
    """Backing row source that counts pull calls and pulled rows."""

    def __init__(self, table=TABLE):
        self.table = table
        self.calls = 0
        self.rows_pulled = 0

    def __call__(self, ids):
        self.calls += 1
        self.rows_pulled += len(ids)
        return self.table[np.asarray(ids, dtype=np.int64)]


def test_fetch_returns_backing_rows():
    cache = ServingEmbeddingCache(CountingSource(), capacity=4)
    np.testing.assert_array_equal(cache.fetch([2, 0, 2]), TABLE[[2, 0, 2]])


def test_static_set_pinned_at_construction():
    source = CountingSource()
    cache = ServingEmbeddingCache(source, static_ids=[1, 3], capacity=4)
    assert source.calls == 1  # one bulk pull for the pinned rows
    assert cache.static_size() == 2
    cache.fetch([1, 3, 1])
    assert cache.static_hits == 3
    assert cache.misses == 0
    assert source.calls == 1  # static hits never touch the source


def test_dynamic_lru_eviction_order():
    source = CountingSource()
    cache = ServingEmbeddingCache(source, capacity=2)
    cache.fetch([0])
    cache.fetch([1])
    assert cache.dynamic_ids() == [0, 1]
    cache.fetch([0])                      # refresh 0: now 1 is next out
    assert cache.dynamic_ids() == [1, 0]
    cache.fetch([2])                      # evicts 1
    assert cache.dynamic_ids() == [0, 2]
    assert cache.evictions == 1
    cache.fetch([1])                      # 1 must re-miss
    assert cache.misses == 4


def test_counters_and_hit_rate():
    cache = ServingEmbeddingCache(CountingSource(), static_ids=[0],
                                  capacity=4)
    cache.fetch([0, 5, 5, 7])
    # 0 is a static hit; first 5 misses, duplicate 5 in the same call
    # counts with its unique id's outcome; 7 misses.
    assert cache.static_hits == 1
    assert cache.misses == 3
    cache.fetch([5, 7])
    assert cache.dynamic_hits == 2
    assert cache.hit_rate == pytest.approx(3 / 6)
    stats = cache.stats()
    assert stats["static_size"] == 1
    assert stats["dynamic_size"] == 2
    assert stats["evictions"] == 0


def test_missing_rows_pulled_in_one_bulk_call():
    source = CountingSource()
    cache = ServingEmbeddingCache(source, capacity=8)
    cache.fetch([4, 1, 9, 1, 4])
    assert source.calls == 1
    assert source.rows_pulled == 3  # unique missing rows only


def test_zero_capacity_disables_dynamic_tier():
    source = CountingSource()
    cache = ServingEmbeddingCache(source, static_ids=[0], capacity=0)
    cache.fetch([1])
    cache.fetch([1])
    assert cache.dynamic_size() == 0
    assert cache.misses == 2
    assert cache.evictions == 0


def test_returned_rows_are_detached_copies():
    cache = ServingEmbeddingCache(CountingSource(), capacity=4)
    rows = cache.fetch([3])
    rows[0, 0] = 1e9
    np.testing.assert_array_equal(cache.fetch([3]), TABLE[[3]])


def test_training_access_counts_sum_over_domains():
    dataset = make_tiny_dataset("trainable")
    field_map = {"u.weight": "users", "i.weight": "items"}
    sizes = {"u.weight": dataset.n_users, "i.weight": dataset.n_items}
    counts = training_access_counts(dataset, field_map, sizes)
    assert counts["u.weight"].shape == (dataset.n_users,)
    assert counts["u.weight"].sum() == dataset.total_interactions("train")
    assert counts["i.weight"].sum() == dataset.total_interactions("train")
    expected = np.bincount(
        np.concatenate([d.train.users for d in dataset]),
        minlength=dataset.n_users,
    )
    np.testing.assert_array_equal(counts["u.weight"], expected)
