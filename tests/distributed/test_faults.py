"""Chaos suite: the cluster under a fault plan must recover, not diverge.

The ``chaos_smoke`` test is the acceptance scenario: a mid-epoch worker
crash plus 5% drops, 5% lost replies and 10% duplicated deliveries, and
training must still converge within 0.01 mean AUC of the no-fault run.
"""

from __future__ import annotations

import pytest

from repro.core import TrainConfig
from repro.distributed import FaultPlan, ParameterServer, SimulatedCluster
from repro.distributed.worker import embedding_parameter_names
from repro.metrics import evaluate_bank
from repro.models import build_model
from repro.nn.serialization import state_checksum


def build_factory(dataset):
    return lambda worker_id: build_model("mlp", dataset, seed=0)


CHAOS_CONFIG = TrainConfig(epochs=6, batch_size=32, inner_steps=3,
                           dr_steps=2, sample_k=1, finetune_steps=4)

#: The acceptance fault plan: deterministic, seeded, and nasty — worker 1
#: dies on its 15th message, on top of a steady 20% of deliveries failing
#: some way.
ACCEPTANCE_PLAN = FaultPlan(seed=7, drop_rate=0.05, timeout_rate=0.05,
                            duplicate_rate=0.10, crash_after={1: 15})


# ----------------------------------------------------------------------
# Plan validation
# ----------------------------------------------------------------------
def test_plan_rates_validated():
    with pytest.raises(ValueError):
        FaultPlan(drop_rate=0.7, timeout_rate=0.4)
    with pytest.raises(ValueError):
        FaultPlan(drop_rate=-0.1)


def test_plan_is_frozen_and_serializable():
    plan = FaultPlan(seed=3, drop_rate=0.1, crash_after={"2": 10},
                     slow_workers={1: 0.5})
    with pytest.raises(AttributeError):
        plan.drop_rate = 0.5
    with pytest.raises(TypeError):
        plan.crash_after[0] = 1
    # JSON configs arrive with string keys; the plan normalizes to int.
    assert plan.crashes_at(2, 10)
    as_dict = plan.as_dict()
    assert FaultPlan(**as_dict) == plan


# ----------------------------------------------------------------------
# No-fault parity: the transport layer must be invisible
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["sync", "async"])
def test_no_fault_run_matches_plain_cluster(mode, tiny_dataset, fast_config):
    plain = SimulatedCluster(n_workers=3, mode=mode)
    bank_plain = plain.run(build_factory(tiny_dataset), tiny_dataset,
                           fast_config, seed=1)
    guarded = SimulatedCluster(n_workers=3, mode=mode, heartbeat_timeout=2)
    bank_guarded = guarded.run(build_factory(tiny_dataset), tiny_dataset,
                               fast_config, seed=1)
    assert state_checksum(bank_plain.model.state_dict()) == state_checksum(
        bank_guarded.model.state_dict()
    )


# ----------------------------------------------------------------------
# Fault handling
# ----------------------------------------------------------------------
def test_drops_and_duplicates_are_survivable(tiny_dataset, fast_config):
    plan = FaultPlan(seed=5, drop_rate=0.1, duplicate_rate=0.1)
    cluster = SimulatedCluster(n_workers=3, mode="async", fault_plan=plan)
    bank = cluster.run(build_factory(tiny_dataset), tiny_dataset,
                       fast_config, seed=1)
    stats = cluster.stats()
    assert stats["crashes"] == []
    # Every worker completed every epoch despite the noise.
    assert all(w.epochs_run == fast_config.epochs for w in cluster.workers)
    report = evaluate_bank(bank, tiny_dataset, method="chaos")
    assert 0.0 <= report.mean_auc <= 1.0


def test_crashed_worker_is_evicted_and_resharded(tiny_dataset):
    config = CHAOS_CONFIG
    plan = FaultPlan(seed=7, crash_after={1: 15})
    cluster = SimulatedCluster(n_workers=3, mode="async", fault_plan=plan,
                               heartbeat_timeout=1)
    cluster.run(build_factory(tiny_dataset), tiny_dataset, config, seed=1)
    stats = cluster.stats()
    assert [crash["worker"] for crash in stats["crashes"]] == [1]
    assert [ev["worker"] for ev in stats["evictions"]] == [1]
    reassigned = stats["evictions"][0]["reassigned"]
    # The dead worker's whole shard moved to live workers.
    assert set(reassigned.values()) <= {0, 2}
    survivors = {w.worker_id: w for w in cluster.workers}
    for domain, target in reassigned.items():
        assert domain in survivors[target].domain_indices
    assert survivors[1].evicted and not survivors[1].alive


def test_eviction_requires_heartbeat_silence(tiny_dataset, fast_config):
    """With the monitor disabled, a crashed worker is never evicted."""
    plan = FaultPlan(seed=7, crash_after={1: 15})
    cluster = SimulatedCluster(n_workers=3, mode="async", fault_plan=plan,
                               heartbeat_timeout=None)
    cluster.run(build_factory(tiny_dataset), tiny_dataset, fast_config,
                seed=1)
    assert cluster.stats()["evictions"] == []


def test_zombie_push_rejected_by_staleness_bound(tiny_dataset):
    """A worker pushing from a long-stale snapshot loses its delta.

    The scheduler itself never interleaves pull and push, so this drives
    two clients by hand: a zombie pulls, the rest of the cluster moves
    on, and the zombie's eventual push must bounce off ``max_staleness``
    instead of dragging the state backwards.
    """
    import numpy as np

    from repro.distributed.transport import DirectChannel, PSClient

    model = build_model("mlp", tiny_dataset, seed=0)
    ps = ParameterServer(
        model.state_dict(),
        embedding_names=embedding_parameter_names(model),
        max_staleness=1,
    )
    zombie = PSClient(DirectChannel(ps), worker_id=9)
    healthy = PSClient(DirectChannel(ps), worker_id=0)
    stale_dense = zombie.pull_dense()  # base_version 0
    name = next(iter(stale_dense))
    for _ in range(3):  # the cluster moves on: version 0 -> 3
        healthy.pull_dense()
        healthy.push_delta({name: np.zeros_like(stale_dense[name])}, {})
    before = ps.full_state()[name].copy()
    response = zombie.push_delta(
        {name: np.ones_like(stale_dense[name])}, {}
    )
    assert not response.accepted
    assert zombie.counters["stale_rejected"] == 1
    assert ps.stale_rejections == 1
    np.testing.assert_array_equal(ps.full_state()[name], before)


# ----------------------------------------------------------------------
# The acceptance scenario
# ----------------------------------------------------------------------
@pytest.mark.chaos_smoke
def test_chaos_acceptance_recovers_within_auc_budget(tiny_dataset):
    """Crash + drops + duplicates: recover within 0.01 mean AUC."""
    config = CHAOS_CONFIG
    baseline = SimulatedCluster(n_workers=3, mode="async")
    bank_base = baseline.run(build_factory(tiny_dataset), tiny_dataset,
                             config, seed=1)
    auc_base = evaluate_bank(bank_base, tiny_dataset, method="base").mean_auc

    chaos = SimulatedCluster(n_workers=3, mode="async",
                             fault_plan=ACCEPTANCE_PLAN, heartbeat_timeout=1)
    bank_chaos = chaos.run(build_factory(tiny_dataset), tiny_dataset,
                           config, seed=1)
    auc_chaos = evaluate_bank(bank_chaos, tiny_dataset,
                              method="chaos").mean_auc

    stats = chaos.stats()
    # The plan actually bit: a crash, an eviction with re-sharding, and
    # duplicated pushes absorbed by server-side dedup.
    assert len(stats["crashes"]) == 1
    assert len(stats["evictions"]) == 1
    assert stats["evictions"][0]["reassigned"]
    assert stats["ps_dedup_hits"] > 0
    assert sum(
        counters["retried"] for counters in stats["transport"].values()
    ) > 0
    assert abs(auc_base - auc_chaos) < 0.01


@pytest.mark.chaos_smoke
def test_chaos_acceptance_is_deterministic(tiny_dataset):
    """The same plan seed replays the same faults and the same result."""
    config = CHAOS_CONFIG

    def once():
        cluster = SimulatedCluster(n_workers=3, mode="async",
                                   fault_plan=ACCEPTANCE_PLAN,
                                   heartbeat_timeout=1)
        bank = cluster.run(build_factory(tiny_dataset), tiny_dataset,
                           config, seed=1)
        return state_checksum(bank.model.state_dict()), cluster.stats()

    checksum_a, stats_a = once()
    checksum_b, stats_b = once()
    assert checksum_a == checksum_b
    assert stats_a["crashes"] == stats_b["crashes"]
    assert stats_a["evictions"] == stats_b["evictions"]
    assert stats_a["ps_dedup_hits"] == stats_b["ps_dedup_hits"]


# ----------------------------------------------------------------------
# Server-side staleness unit check
# ----------------------------------------------------------------------
def test_ps_rejects_stale_push_directly(tiny_dataset):
    from repro.distributed.transport import PushRequest

    model = build_model("mlp", tiny_dataset, seed=0)
    ps = ParameterServer(
        model.state_dict(),
        embedding_names=embedding_parameter_names(model),
        max_staleness=1,
    )
    fresh = PushRequest(worker_id=0, request_id="a", base_version=0,
                        dense_delta={}, embedding_deltas={})
    assert ps.handle(fresh).accepted
    assert ps.handle(
        PushRequest(worker_id=0, request_id="b", base_version=0,
                    dense_delta={}, embedding_deltas={})
    ).accepted  # exactly max_staleness behind: still allowed
    ps.handle(PushRequest(worker_id=0, request_id="c", base_version=1,
                          dense_delta={}, embedding_deltas={}))
    stale = ps.handle(
        PushRequest(worker_id=0, request_id="d", base_version=1,
                    dense_delta={}, embedding_deltas={})
    )
    assert not stale.accepted and "stale" in stale.reason
    assert ps.stale_rejections == 1
