"""Worker semantics: pull/train/push cycle in isolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TrainConfig
from repro.distributed import ParameterServer, Worker
from repro.distributed.worker import embedding_parameter_names
from repro.models import build_model
from repro.utils.seeding import spawn_rng


def make_parts(dataset, domains=(0,), config=None):
    model = build_model("mlp", dataset, seed=0)
    ps = ParameterServer(
        model.state_dict(),
        embedding_names=embedding_parameter_names(model),
        outer_lr=1.0,
    )
    config = config or TrainConfig(epochs=1, inner_steps=2, batch_size=32)
    worker = Worker(0, model, domains, ps, config)
    return model, ps, worker


def test_worker_pushes_exactly_once_per_epoch(tiny_dataset):
    _, ps, worker = make_parts(tiny_dataset)
    rng = spawn_rng(0, "w")
    worker.run_epoch(tiny_dataset, rng)
    assert ps.version == 1
    worker.run_epoch(tiny_dataset, rng)
    assert ps.version == 2


def test_worker_only_touches_shard_rows(tiny_dataset):
    """Embedding rows never seen by the worker's domains keep their PS
    values exactly."""
    _, ps, worker = make_parts(tiny_dataset, domains=(0,))
    before = ps.full_state()
    rng = spawn_rng(0, "w")
    worker.run_epoch(tiny_dataset, rng)
    after = ps.full_state()

    domain = tiny_dataset.domain(0)
    touched_users = set(np.unique(domain.train.users).tolist())
    table_name = "encoder.user_embedding.weight"
    for row in range(before[table_name].shape[0]):
        if row not in touched_users:
            np.testing.assert_array_equal(
                before[table_name][row], after[table_name][row]
            )
    # dense parameters did move
    assert not np.allclose(before["body.layers.0.weight"],
                           after["body.layers.0.weight"])


def test_worker_caches_cleared_after_epoch(tiny_dataset):
    _, _, worker = make_parts(tiny_dataset)
    rng = spawn_rng(0, "w")
    worker.run_epoch(tiny_dataset, rng)
    for cache in worker.caches.values():
        assert cache.deltas() == {}


def test_worker_cache_stats_reported(tiny_dataset):
    _, _, worker = make_parts(tiny_dataset)
    rng = spawn_rng(0, "w")
    worker.run_epoch(tiny_dataset, rng)
    stats = worker.cache_stats()
    assert set(stats) == {
        "encoder.user_embedding.weight", "encoder.item_embedding.weight",
    }
    for table in stats.values():
        assert table["misses"] > 0
        assert 0.0 <= table["hit_rate"] <= 1.0


def test_field_map_validation(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    ps = ParameterServer(model.state_dict(), embedding_names=[])
    with pytest.raises(KeyError):
        Worker(0, model, [0], ps, TrainConfig(),
               field_map={"not.a.table": "users"})
