"""Simulated PS-Worker cluster: sharding, equivalence, convergence."""

from __future__ import annotations

import pytest

from repro.distributed import (
    SimulatedCluster,
    embedding_field_map,
    embedding_parameter_names,
    shard_domains,
)
from repro.metrics import evaluate_bank
from repro.models import build_model


def test_shard_domains_balanced(tiny_dataset):
    shards = shard_domains(tiny_dataset, 2)
    assert sorted(i for shard in shards for i in shard) == [0, 1, 2]
    loads = [
        sum(len(tiny_dataset.domain(i).train) for i in shard)
        for shard in shards
    ]
    assert max(loads) - min(loads) <= max(
        len(d.train) for d in tiny_dataset.domains
    )
    with pytest.raises(ValueError):
        shard_domains(tiny_dataset, 0)


def test_embedding_discovery(tiny_dataset, tiny_fixed_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    names = embedding_parameter_names(model)
    assert names == [
        "encoder.user_embedding.weight",
        "encoder.item_embedding.weight",
    ]
    mapping = embedding_field_map(model)
    assert mapping["encoder.user_embedding.weight"] == "users"
    assert mapping["encoder.item_embedding.weight"] == "items"

    fixed_model = build_model("mlp", tiny_fixed_dataset, seed=0)
    assert embedding_parameter_names(fixed_model) == []


def test_single_worker_trains(tiny_dataset, fast_config):
    cluster = SimulatedCluster(n_workers=1, mode="async")
    bank = cluster.fit(
        lambda wid: build_model("mlp", tiny_dataset, seed=0),
        tiny_dataset, fast_config, seed=1,
    )
    report = evaluate_bank(bank, tiny_dataset)
    assert 0.0 <= report.mean_auc <= 1.0
    stats = cluster.stats()
    assert stats["ps_version"] == fast_config.epochs


@pytest.mark.parametrize("mode", ["async", "sync"])
def test_multi_worker_both_modes(mode, tiny_dataset, fast_config):
    cluster = SimulatedCluster(n_workers=3, mode=mode)
    bank = cluster.fit(
        lambda wid: build_model("mlp", tiny_dataset, seed=0),
        tiny_dataset, fast_config, seed=1,
    )
    report = evaluate_bank(bank, tiny_dataset)
    assert 0.0 <= report.mean_auc <= 1.0
    stats = cluster.stats()
    # one push per worker per epoch
    assert stats["ps_version"] == fast_config.epochs * len(cluster.workers)
    for worker_stats in stats["workers"].values():
        for table_stats in worker_stats.values():
            assert table_stats["hits"] + table_stats["misses"] > 0


def test_cluster_with_dr_returns_per_domain_bank(tiny_dataset, fast_config):
    cluster = SimulatedCluster(n_workers=2)
    bank = cluster.fit(
        lambda wid: build_model("mlp", tiny_dataset, seed=0),
        tiny_dataset, fast_config, seed=1, use_dr=True,
    )
    assert set(bank.domain_states) == set(range(tiny_dataset.n_domains))


def test_cluster_matches_quality_of_local_training(tiny_dataset, fast_config):
    """Distributed DN must land in the same quality band as local DN."""
    from repro.core import DomainNegotiation

    config = fast_config.updated(epochs=4, inner_steps=None)
    local_model = build_model("mlp", tiny_dataset, seed=0)
    local = evaluate_bank(
        DomainNegotiation().fit(local_model, tiny_dataset, config, seed=1),
        tiny_dataset,
    ).mean_auc

    cluster = SimulatedCluster(n_workers=2)
    distributed = evaluate_bank(
        cluster.fit(lambda wid: build_model("mlp", tiny_dataset, seed=0),
                    tiny_dataset, config, seed=1),
        tiny_dataset,
    ).mean_auc
    assert abs(local - distributed) < 0.12


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        SimulatedCluster(mode="bulk")


def test_fixed_feature_dataset_has_no_cache_traffic(tiny_fixed_dataset,
                                                    fast_config):
    cluster = SimulatedCluster(n_workers=2)
    cluster.fit(
        lambda wid: build_model("mlp", tiny_fixed_dataset, seed=0),
        tiny_fixed_dataset, fast_config, seed=1,
    )
    stats = cluster.stats()
    assert stats["ps_pulls"]["embedding_rows"] == 0
