"""Embedding cache (Figure 7): static/dynamic semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import EmbeddingCache, ParameterServer


def make_ps():
    return ParameterServer(
        {"emb.weight": np.arange(12.0).reshape(4, 3)},
        embedding_names=["emb.weight"],
        outer_lr=1.0,
    )


def test_miss_then_hit():
    ps = make_ps()
    cache = EmbeddingCache(ps, "emb.weight")
    rows = cache.fetch([0, 1])
    assert cache.misses == 2 and cache.hits == 0
    np.testing.assert_allclose(rows, [[0, 1, 2], [3, 4, 5]])
    cache.fetch([0, 1])
    assert cache.hits == 2
    assert cache.hit_rate == pytest.approx(0.5)


def test_dynamic_serves_local_updates_static_keeps_reference():
    ps = make_ps()
    cache = EmbeddingCache(ps, "emb.weight")
    cache.fetch([2])
    cache.update([2], [np.array([9.0, 9.0, 9.0])])
    np.testing.assert_allclose(cache.fetch([2]), [[9, 9, 9]])
    # delta is measured against the static reference
    deltas = cache.deltas()
    np.testing.assert_allclose(deltas[2], [3.0, 2.0, 1.0])
    assert cache.touched_rows() == [2]


def test_update_before_fetch_rejected():
    cache = EmbeddingCache(make_ps(), "emb.weight")
    with pytest.raises(KeyError):
        cache.update([0], [np.zeros(3)])


def test_miss_pulls_latest_from_ps():
    """The read-through on a miss sees PS updates made mid-epoch — the
    staleness bound of the design."""
    ps = make_ps()
    cache = EmbeddingCache(ps, "emb.weight")
    ps.push_delta({}, {"emb.weight": {3: np.array([1.0, 1.0, 1.0])}})
    rows = cache.fetch([3])
    np.testing.assert_allclose(rows, [[10, 11, 12]])


def test_clear_resets_for_next_epoch():
    ps = make_ps()
    cache = EmbeddingCache(ps, "emb.weight")
    cache.fetch([0])
    cache.clear()
    assert cache.deltas() == {}
    cache.fetch([0])
    assert cache.misses == 2  # counts persist; caches were emptied


def test_duplicate_ids_in_one_fetch():
    ps = make_ps()
    cache = EmbeddingCache(ps, "emb.weight")
    rows = cache.fetch([1, 1, 1])
    assert rows.shape == (3, 3)
    assert cache.misses == 1
    assert cache.hits == 2
