"""The message transport: channels, retries, dedup, the PSClient stub."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import ParameterServer
from repro.distributed.faults import FaultPlan, WorkerCrashed
from repro.distributed.transport import (
    DeliveryFailed,
    DirectChannel,
    FaultyChannel,
    HeartbeatRequest,
    MessageDropped,
    PSClient,
    PullDenseRequest,
    PullRowsRequest,
    PushRequest,
    ReplyLost,
    Response,
    RetryPolicy,
    VirtualClock,
    call_with_retry,
)
from repro.models import build_model
from repro.distributed.worker import embedding_parameter_names
from repro.utils.seeding import spawn_rng


def make_ps(dataset, **kwargs):
    model = build_model("mlp", dataset, seed=0)
    return ParameterServer(
        model.state_dict(),
        embedding_names=embedding_parameter_names(model),
        outer_lr=1.0,
        **kwargs,
    )


class RecordingServer:
    """A stand-in endpoint that logs every request it handles."""

    def __init__(self, fail_first=0):
        self.requests = []
        self.fail_first = fail_first

    def handle(self, request):
        self.requests.append(request)
        return Response(version=len(self.requests), payload="ok")


# ----------------------------------------------------------------------
# Messages and the direct channel
# ----------------------------------------------------------------------
def test_messages_are_frozen():
    request = PullDenseRequest(worker_id=1, request_id="1/0/0")
    with pytest.raises(AttributeError):
        request.worker_id = 2
    response = Response(version=3)
    with pytest.raises(AttributeError):
        response.version = 4


def test_direct_channel_passes_through(tiny_dataset):
    ps = make_ps(tiny_dataset)
    channel = DirectChannel(ps)
    response = channel.call(PullDenseRequest(worker_id=0, request_id="r0"))
    assert isinstance(response, Response)
    assert set(response.payload) == {
        name for name in ps.full_state() if name not in ps.embedding_names
    }
    rows = channel.call(
        PullRowsRequest(worker_id=0, request_id="r1",
                        table="encoder.user_embedding.weight",
                        ids=(0, 2))
    )
    assert rows.payload.shape[0] == 2


def test_heartbeats_recorded_on_server(tiny_dataset):
    ps = make_ps(tiny_dataset)
    channel = DirectChannel(ps)
    channel.call(HeartbeatRequest(worker_id=7, request_id="h0", tick=3))
    assert ps.heartbeats[7] == 3


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(max_attempts=6, base_delay=0.1, max_delay=0.5,
                         jitter=0.0)
    delays = [policy.backoff(attempt, rng=None) for attempt in range(5)]
    assert delays[0] == pytest.approx(0.1)
    assert delays[1] == pytest.approx(0.2)
    assert delays[2] == pytest.approx(0.4)
    assert delays[3] == pytest.approx(0.5)  # capped
    assert delays[4] == pytest.approx(0.5)


def test_backoff_jitter_is_seeded():
    policy = RetryPolicy(base_delay=0.1, jitter=0.5)
    a = [policy.backoff(i, rng=spawn_rng(3, "jitter")) for i in range(4)]
    b = [policy.backoff(i, rng=spawn_rng(3, "jitter")) for i in range(4)]
    assert a == b


def test_call_with_retry_resends_same_request(tiny_dataset):
    """A retried push carries the SAME request id — that is what makes
    at-least-once delivery exactly-once at the server."""
    ps = make_ps(tiny_dataset)
    plan = FaultPlan(seed=5, timeout_rate=1.0)
    clock = VirtualClock()
    channel = FaultyChannel(DirectChannel(ps), plan, worker_id=0, clock=clock)
    request = PushRequest(worker_id=0, request_id="0/0/1", base_version=0,
                          dense_delta={}, embedding_deltas={})
    with pytest.raises(DeliveryFailed):
        call_with_retry(channel, request,
                        RetryPolicy(max_attempts=3, jitter=0.0),
                        rng=None, clock=clock)
    # Every timed-out delivery reached the server; dedup absorbed the rest.
    assert ps.dedup_hits == 2
    assert clock.now > 0.0


def test_call_with_retry_succeeds_after_transient_drops():
    server = RecordingServer()

    class Flaky:
        def __init__(self, inner, failures):
            self.inner = inner
            self.failures = failures

        def call(self, request):
            if self.failures:
                self.failures -= 1
                raise MessageDropped("injected")
            return self.inner.call(request)

    channel = Flaky(DirectChannel(server), failures=2)
    response = call_with_retry(
        channel, PullDenseRequest(worker_id=0, request_id="p"),
        RetryPolicy(max_attempts=5, jitter=0.0), clock=VirtualClock(),
    )
    assert response.payload == "ok"
    assert len(server.requests) == 1


# ----------------------------------------------------------------------
# Fault semantics on the channel
# ----------------------------------------------------------------------
def test_drop_never_reaches_server():
    server = RecordingServer()
    plan = FaultPlan(seed=1, drop_rate=1.0)
    channel = FaultyChannel(DirectChannel(server), plan, worker_id=0,
                            clock=VirtualClock())
    with pytest.raises(MessageDropped):
        channel.call(PullDenseRequest(worker_id=0, request_id="x"))
    assert server.requests == []


def test_timeout_reaches_server_but_loses_reply():
    server = RecordingServer()
    plan = FaultPlan(seed=1, timeout_rate=1.0)
    channel = FaultyChannel(DirectChannel(server), plan, worker_id=0,
                            clock=VirtualClock())
    with pytest.raises(ReplyLost):
        channel.call(PullDenseRequest(worker_id=0, request_id="x"))
    assert len(server.requests) == 1


def test_duplicate_delivers_twice():
    server = RecordingServer()
    plan = FaultPlan(seed=1, duplicate_rate=1.0)
    channel = FaultyChannel(DirectChannel(server), plan, worker_id=0,
                            clock=VirtualClock())
    response = channel.call(PullDenseRequest(worker_id=0, request_id="x"))
    assert response.payload == "ok"
    assert len(server.requests) == 2


def test_slow_worker_advances_clock():
    server = RecordingServer()
    plan = FaultPlan(seed=1, slow_workers={0: 2.5})
    clock = VirtualClock()
    channel = FaultyChannel(DirectChannel(server), plan, worker_id=0,
                            clock=clock)
    channel.call(PullDenseRequest(worker_id=0, request_id="x"))
    assert clock.now == pytest.approx(2.5)


def test_crash_after_message_threshold():
    server = RecordingServer()
    plan = FaultPlan(seed=1, crash_after={0: 3})
    channel = FaultyChannel(DirectChannel(server), plan, worker_id=0,
                            clock=VirtualClock())
    request = PullDenseRequest(worker_id=0, request_id="x")
    channel.call(request)
    channel.call(request)
    with pytest.raises(WorkerCrashed) as excinfo:
        channel.call(request)
    assert excinfo.value.worker_id == 0
    assert excinfo.value.message_index == 3
    assert len(server.requests) == 2


def test_fault_streams_are_deterministic():
    plan = FaultPlan(seed=11, drop_rate=0.3, timeout_rate=0.2,
                     duplicate_rate=0.1)

    def outcomes():
        rng = plan.channel_rng(4)
        return [plan.decide(rng) for _ in range(64)]

    assert outcomes() == outcomes()
    # Separate workers get separate streams.
    other = [plan.decide(plan.channel_rng(5)) for _ in range(64)]
    assert outcomes() != other


# ----------------------------------------------------------------------
# PSClient
# ----------------------------------------------------------------------
def test_client_request_ids_unique_and_incarnated(tiny_dataset):
    ps = make_ps(tiny_dataset)
    client = PSClient(DirectChannel(ps), worker_id=3, incarnation=2)
    client.pull_dense()
    client.heartbeat()
    ids = [r for r in ps._applied_push_ids]
    client.push_delta({}, {})
    assert all(pid.startswith("3/2/") for pid in ps._applied_push_ids)
    assert ids == []  # pulls and heartbeats never enter the push dedup set


def test_client_tracks_base_version_for_pushes(tiny_dataset):
    ps = make_ps(tiny_dataset)
    client = PSClient(DirectChannel(ps), worker_id=0)
    client.pull_dense()
    assert client.base_version == 0
    client.push_delta({}, {})
    assert ps.version == 1


def test_stale_push_is_rejected_not_raised(tiny_dataset):
    ps = make_ps(tiny_dataset, max_staleness=0)
    fresh = PSClient(DirectChannel(ps), worker_id=0)
    stale = PSClient(DirectChannel(ps), worker_id=1)
    stale.pull_dense()
    fresh.pull_dense()
    fresh.push_delta({}, {})  # bumps version to 1
    response = stale.push_delta({}, {})  # base 0, now 1 behind
    assert not response.accepted
    assert "stale" in response.reason
    assert stale.counters["stale_rejected"] == 1
    assert ps.stale_rejections == 1


def test_unreachable_server_raises_delivery_failed(tiny_dataset):
    ps = make_ps(tiny_dataset)
    plan = FaultPlan(seed=2, drop_rate=1.0)
    clock = VirtualClock()
    channel = FaultyChannel(DirectChannel(ps), plan, worker_id=0, clock=clock)
    client = PSClient(channel, worker_id=0,
                      retry=RetryPolicy(max_attempts=2, jitter=0.0),
                      clock=clock)
    with pytest.raises(DeliveryFailed):
        client.pull_dense()


def test_heartbeat_loss_is_swallowed(tiny_dataset):
    """A lost heartbeat must not kill the epoch — eviction handles silence."""
    ps = make_ps(tiny_dataset)
    plan = FaultPlan(seed=2, drop_rate=1.0)
    clock = VirtualClock()
    channel = FaultyChannel(DirectChannel(ps), plan, worker_id=0, clock=clock)
    client = PSClient(channel, worker_id=0,
                      retry=RetryPolicy(max_attempts=2, jitter=0.0),
                      clock=clock)
    client.heartbeat()
    assert client.counters["heartbeats_lost"] == 1
    assert ps.heartbeats == {}


def test_duplicate_push_applied_exactly_once(tiny_dataset):
    ps = make_ps(tiny_dataset)
    plan = FaultPlan(seed=3, duplicate_rate=1.0)
    clock = VirtualClock()
    channel = FaultyChannel(DirectChannel(ps), plan, worker_id=0, clock=clock)
    client = PSClient(channel, worker_id=0, clock=clock)
    name = next(iter(client.pull_dense()))
    before = ps.full_state()[name].copy()
    delta = np.ones_like(before)
    client.push_delta({name: delta}, {})
    after = ps.full_state()[name]
    np.testing.assert_allclose(after, before + delta)  # once, not twice
    assert ps.dedup_hits == 1
    assert ps.version == 1
