"""Lane-vectorized replay engine: bitwise parity with the sequential
reference, and graceful bail-out to it.

``vector_dn_round`` batches every worker of a bulk-synchronous DN round
into one lane-parallel tape replay; ``vector_dr_rounds`` does the same
for all DR target domains.  Both promise results **bit-for-bit equal**
to the sequential in-process reference (same workers, same PS wire
protocol, same RNG streams) — parity here is exact array equality, not
allclose.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TrainConfig
from repro.core.param_space import DomainParameterSpace
from repro.data import DomainSpec, SyntheticConfig, generate_dataset
from repro.distributed.parallel import _dr_targets
from repro.distributed.vector import (
    sync_dn_round_reference,
    vector_dn_round,
    vector_dr_rounds,
)
from repro.models import build_model
from repro.utils import profiling
from repro.utils.seeding import spawn_rng

pytestmark = pytest.mark.compile_smoke


def make_dataset(n_domains, feature_mode="fixed", seed=0):
    specs = tuple(
        DomainSpec(f"V{i}", 90, 0.25 + 0.05 * (i % 8)) for i in range(n_domains)
    )
    return generate_dataset(SyntheticConfig(
        name="vector", domains=specs, n_users=120, n_items=80,
        latent_dim=4, feature_mode=feature_mode, feature_dim=8, seed=seed,
    ))


def bail_count(prof):
    record = prof.ops.get("vector.bail")
    return record.calls if record else 0


def assert_states_equal(reference, candidate):
    assert set(reference) == set(candidate)
    for name in reference:
        assert np.array_equal(reference[name], candidate[name]), name


class TestVectorDN:
    def test_bitwise_parity_with_reference(self):
        dataset = make_dataset(6)
        config = TrainConfig(batch_size=8, inner_steps=3)
        model = build_model("mlp", dataset, seed=0)
        shared = model.state_dict()

        with profiling.profile() as prof:
            vec = vector_dn_round(model, dataset, shared, config,
                                  spawn_rng(11, "dn"))
        assert bail_count(prof) == 0, "vector DN unexpectedly bailed"
        ref = sync_dn_round_reference(build_model("mlp", dataset, seed=0),
                                      dataset, shared, config,
                                      spawn_rng(11, "dn"))
        assert_states_equal(ref, vec)

    def test_model_state_and_rngs_restored(self):
        """The round must not leak into the caller's model: parameters and
        module RNG streams read as if the round never touched them."""
        dataset = make_dataset(4)
        config = TrainConfig(batch_size=8, inner_steps=2)
        model = build_model("mlp", dataset, seed=0)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        shared = model.state_dict()
        vector_dn_round(model, dataset, shared, config, spawn_rng(3, "dn"))
        assert_states_equal(before, model.state_dict())

    def test_lane_blocking_preserves_parity(self, monkeypatch):
        """More lanes than the cache block: the round runs as several
        block replays inside one sync barrier, still bit-for-bit."""
        from repro.distributed import vector as vector_mod

        monkeypatch.setattr(vector_mod, "_LANE_BLOCK", 2)
        dataset = make_dataset(5)
        config = TrainConfig(batch_size=8, inner_steps=2)
        model = build_model("mlp", dataset, seed=0)
        shared = model.state_dict()
        with profiling.profile() as prof:
            vec = vector_dn_round(model, dataset, shared, config,
                                  spawn_rng(4, "dn"))
        assert bail_count(prof) == 0
        ref = sync_dn_round_reference(build_model("mlp", dataset, seed=0),
                                      dataset, shared, config,
                                      spawn_rng(4, "dn"))
        assert_states_equal(ref, vec)

    def test_embedding_model_falls_back_to_reference(self):
        """Trainable-embedding models are outside the vector engine's
        dense-only contract: the round must bail — counted in the profile —
        and still return the exact reference result."""
        dataset = make_dataset(4, feature_mode="trainable")
        config = TrainConfig(batch_size=8, inner_steps=2)
        model = build_model("mlp", dataset, seed=0)
        shared = model.state_dict()

        with profiling.profile() as prof:
            out = vector_dn_round(model, dataset, shared, config,
                                  spawn_rng(9, "dn"))
        assert bail_count(prof) >= 1
        ref = sync_dn_round_reference(build_model("mlp", dataset, seed=0),
                                      dataset, shared, config,
                                      spawn_rng(9, "dn"))
        assert_states_equal(ref, out)


class TestVectorDR:
    def test_bitwise_parity_with_reference(self):
        dataset = make_dataset(5)
        config = TrainConfig(batch_size=8, sample_k=2, dr_steps=2)
        model = build_model("mlp", dataset, seed=0)
        space = DomainParameterSpace(model, dataset.n_domains)
        for target in range(dataset.n_domains):
            delta = space.delta(target)
            for name in delta:
                delta[name] += 0.01 * (target + 1)

        with profiling.profile() as prof:
            vec = vector_dr_rounds(model, dataset, space, config, seed=7)
        assert bail_count(prof) == 0, "vector DR unexpectedly bailed"
        ref = _dr_targets(build_model("mlp", dataset, seed=0), dataset,
                          space, config, 7, list(range(dataset.n_domains)))
        assert set(vec) == set(ref)
        for target in ref:
            assert_states_equal(ref[target], vec[target])

    def test_zero_sample_k_returns_cloned_deltas(self):
        dataset = make_dataset(3)
        config = TrainConfig(batch_size=8, sample_k=0, dr_steps=2)
        model = build_model("mlp", dataset, seed=0)
        space = DomainParameterSpace(model, dataset.n_domains)
        out = vector_dr_rounds(model, dataset, space, config, seed=1)
        for target, delta in out.items():
            assert_states_equal(space.delta(target), delta)
            for name in delta:  # clones, not aliases
                assert delta[name] is not space.delta(target)[name]
