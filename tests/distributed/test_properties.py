"""Property-based tests for the PS and embedding cache.

Hypothesis drives random operation sequences; the invariants are the ones
the Section IV-E design depends on:

* cache ``deltas`` always equals (last local value − value at first pull);
* applying all deltas with β=1 on an otherwise idle PS reproduces the
  worker's local view exactly;
* PS interpolation is linear in β.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import EmbeddingCache, ParameterServer

N_ROWS, DIM = 6, 3


def fresh_ps(outer_lr=1.0):
    return ParameterServer(
        {"emb": np.arange(float(N_ROWS * DIM)).reshape(N_ROWS, DIM)},
        embedding_names=["emb"],
        outer_lr=outer_lr,
    )


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, N_ROWS - 1), st.floats(-2.0, 2.0)),
        min_size=1, max_size=20,
    )
)
def test_cache_delta_invariant(ops):
    """After any fetch/update sequence, delta = dynamic − static."""
    ps = fresh_ps()
    cache = EmbeddingCache(ps, "emb")
    local = {}
    initial = {}
    for row, bump in ops:
        value = cache.fetch([row])[0]
        if row not in initial:
            initial[row] = value.copy()
        updated = value + bump
        cache.update([row], [updated])
        local[row] = updated.copy()
    deltas = cache.deltas()
    assert set(deltas) == set(local)
    for row, delta in deltas.items():
        np.testing.assert_allclose(delta, local[row] - initial[row], atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, N_ROWS - 1), st.floats(-1.0, 1.0)),
        min_size=1, max_size=15,
    )
)
def test_push_with_beta_one_reproduces_local_view(ops):
    """β=1 push makes the PS equal to the worker's final dynamic view."""
    ps = fresh_ps(outer_lr=1.0)
    cache = EmbeddingCache(ps, "emb")
    final = {}
    for row, bump in ops:
        value = cache.fetch([row])[0]
        cache.update([row], [value + bump])
        final[row] = value + bump
    ps.push_delta({}, {"emb": cache.deltas()})
    table = ps.full_state()["emb"]
    for row, value in final.items():
        np.testing.assert_allclose(table[row], value, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(beta=st.floats(0.05, 1.0), bump=st.floats(-3.0, 3.0))
def test_ps_interpolation_linear_in_beta(beta, bump):
    ps = fresh_ps(outer_lr=beta)
    before = ps.full_state()["emb"][2].copy()
    ps.push_delta({}, {"emb": {2: np.full(DIM, bump)}})
    after = ps.full_state()["emb"][2]
    np.testing.assert_allclose(after, before + beta * bump, atol=1e-12)
