"""Checkpoint/resume: checksummed archives and bit-for-bit restarts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TrainConfig
from repro.distributed import (
    ParameterServer,
    SimulatedCluster,
    load_checkpoint,
    save_checkpoint,
)
from repro.distributed.worker import embedding_parameter_names
from repro.models import build_model
from repro.nn.serialization import SerializationError, save_state, state_checksum


def build_factory(dataset):
    return lambda worker_id: build_model("mlp", dataset, seed=0)


RESUME_CONFIG = TrainConfig(epochs=4, batch_size=32, inner_steps=3,
                            dr_steps=2, sample_k=1, finetune_steps=4)


def test_checkpoint_roundtrip(tiny_dataset, tmp_path):
    model = build_model("mlp", tiny_dataset, seed=0)
    ps = ParameterServer(
        model.state_dict(),
        embedding_names=embedding_parameter_names(model),
        outer_optimizer="adagrad",
    )
    name = next(iter(ps.pull_dense()))
    ps.push_delta({name: np.ones_like(ps.full_state()[name])}, {})
    path = tmp_path / "ckpt.npz"
    save_checkpoint(path, ps, epoch=3)
    ckpt = load_checkpoint(path)
    assert ckpt.epoch == 3
    assert ckpt.version == ps.version == 1
    assert state_checksum(ckpt.state) == state_checksum(ps.full_state())
    # Adagrad accumulators made the trip too.
    slots = ps.optimizer_slots()
    assert set(ckpt.optimizer_slots) == set(slots)
    for attr, entries in slots.items():
        for index, value in entries.items():
            np.testing.assert_array_equal(
                ckpt.optimizer_slots[attr][index], value
            )


def test_corrupt_archive_rejected(tiny_dataset, tmp_path):
    model = build_model("mlp", tiny_dataset, seed=0)
    ps = ParameterServer(model.state_dict())
    path = tmp_path / "ckpt.npz"
    save_checkpoint(path, ps, epoch=1)
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises((SerializationError, Exception)):
        load_checkpoint(path)


def test_non_checkpoint_archive_rejected(tiny_dataset, tmp_path):
    path = tmp_path / "other.npz"
    save_state(path, {"weights": np.zeros(3)})
    with pytest.raises(SerializationError, match="not a cluster checkpoint"):
        load_checkpoint(path)


def test_restore_validates_key_set(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    ps = ParameterServer(model.state_dict())
    with pytest.raises(KeyError, match="do not match"):
        ps.restore({"bogus": np.zeros(2)}, version=1)


@pytest.mark.parametrize("outer", [None, "adagrad"])
@pytest.mark.parametrize("mode", ["sync", "async"])
def test_resume_is_byte_identical(mode, outer, tiny_dataset, tmp_path):
    """Uninterrupted run == checkpoint at epoch 2 + resume, bit for bit.

    This pins everything a restart needs: PS state + version, server
    optimizer slots, worker inner-Adam moments, model-held RNG streams
    (dropout) and the driver RNG/tracker position.
    """
    factory = build_factory(tiny_dataset)
    full = SimulatedCluster(n_workers=2, mode=mode, outer_optimizer=outer)
    bank_full = full.run(factory, tiny_dataset, RESUME_CONFIG, seed=1)

    path = tmp_path / "ckpt.npz"
    writer = SimulatedCluster(n_workers=2, mode=mode, outer_optimizer=outer,
                              checkpoint_path=str(path), checkpoint_every=2)
    writer.run(factory, tiny_dataset, RESUME_CONFIG, seed=1)
    assert path.exists()

    resumed = SimulatedCluster(n_workers=2, mode=mode, outer_optimizer=outer)
    bank_resumed = resumed.resume(factory, tiny_dataset, RESUME_CONFIG,
                                  checkpoint_path=str(path))
    assert state_checksum(bank_resumed.model.state_dict()) == state_checksum(
        bank_full.model.state_dict()
    )


def test_resume_requires_a_path(tiny_dataset):
    cluster = SimulatedCluster(n_workers=2)
    with pytest.raises(ValueError, match="no checkpoint_path"):
        cluster.resume(build_factory(tiny_dataset), tiny_dataset,
                       RESUME_CONFIG)


def test_checkpoint_not_written_for_final_epoch(tiny_dataset, tmp_path):
    """The guard skips a checkpoint that would only capture the finished
    run — resume from it would train zero epochs."""
    path = tmp_path / "ckpt.npz"
    cluster = SimulatedCluster(n_workers=2, checkpoint_path=str(path),
                               checkpoint_every=2)
    cluster.run(build_factory(tiny_dataset), tiny_dataset,
                RESUME_CONFIG.updated(epochs=2), seed=1)
    assert not path.exists()
