"""Parameter server semantics: pulls, pushes, sync rounds, optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import ParameterServer


def make_state():
    return {
        "dense.w": np.ones((2, 2)),
        "emb.weight": np.arange(12.0).reshape(4, 3),
    }


def make_ps(**kwargs):
    defaults = dict(embedding_names=["emb.weight"], outer_lr=0.5)
    defaults.update(kwargs)
    return ParameterServer(make_state(), **defaults)


def test_pull_dense_excludes_embeddings():
    ps = make_ps()
    dense = ps.pull_dense()
    assert set(dense) == {"dense.w"}
    dense["dense.w"][0, 0] = 99.0
    assert ps.full_state()["dense.w"][0, 0] == 1.0


def test_pull_embedding_rows():
    ps = make_ps()
    rows = ps.pull_embedding_rows("emb.weight", [1, 3])
    np.testing.assert_allclose(rows, [[3, 4, 5], [9, 10, 11]])
    with pytest.raises(KeyError):
        ps.pull_embedding_rows("dense.w", [0])


def test_unknown_embedding_name_rejected():
    with pytest.raises(KeyError):
        ParameterServer(make_state(), embedding_names=["nope"])


def test_push_delta_interpolation():
    ps = make_ps(outer_lr=0.5)
    ps.push_delta(
        {"dense.w": np.full((2, 2), 2.0)},
        {"emb.weight": {1: np.array([2.0, 2.0, 2.0])}},
    )
    state = ps.full_state()
    np.testing.assert_allclose(state["dense.w"], 2.0)          # 1 + 0.5*2
    np.testing.assert_allclose(state["emb.weight"][1], [4, 5, 6])
    np.testing.assert_allclose(state["emb.weight"][0], [0, 1, 2])  # untouched
    assert ps.version == 1


def test_sync_round_buffers_pushes():
    ps = make_ps(outer_lr=1.0)
    ps.begin_sync_round()
    ps.push_delta({"dense.w": np.ones((2, 2))}, {})
    # not applied yet: pulls still see the snapshot
    np.testing.assert_allclose(ps.pull_dense()["dense.w"], 1.0)
    ps.push_delta({"dense.w": np.ones((2, 2))}, {})
    ps.end_sync_round()
    np.testing.assert_allclose(ps.full_state()["dense.w"], 3.0)
    assert ps.version == 2


def test_sync_round_guards():
    ps = make_ps()
    with pytest.raises(RuntimeError):
        ps.end_sync_round()
    ps.begin_sync_round()
    with pytest.raises(RuntimeError):
        ps.begin_sync_round()


def test_outer_optimizer_path():
    ps = make_ps(outer_optimizer="sgd", outer_lr=0.1)
    ps.push_delta({"dense.w": np.ones((2, 2))}, {})
    # SGD on gradient -delta with lr 0.1: w += 0.1 * delta
    np.testing.assert_allclose(ps.full_state()["dense.w"], 1.1)


def test_counters_track_traffic():
    ps = make_ps()
    ps.pull_dense()
    ps.pull_embedding_rows("emb.weight", [0, 1, 2])
    ps.push_delta({"dense.w": np.zeros((2, 2))},
                  {"emb.weight": {0: np.zeros(3)}})
    assert ps.pull_counts == {"dense": 1, "embedding_rows": 3}
    assert ps.push_counts == {"dense": 1, "embedding_rows": 1}
