"""Deprecated entrypoints must warn — and produce identical results.

The transport redesign kept the old construction rituals alive as thin
shims: ``SimulatedCluster.fit`` forwards to ``run``, and a ``Worker``
built with a raw :class:`ParameterServer` silently wraps it in an
in-process channel.  Each shim must emit a ``DeprecationWarning`` and be
byte-identical to the supported path.
"""

from __future__ import annotations

import warnings

import pytest

from repro.distributed import (
    DirectChannel,
    ParameterServer,
    PSClient,
    SimulatedCluster,
    Worker,
)
from repro.distributed.worker import embedding_parameter_names
from repro.models import build_model
from repro.nn.serialization import state_checksum
from repro.utils.seeding import spawn_rng


def build_factory(dataset):
    return lambda worker_id: build_model("mlp", dataset, seed=0)


def test_cluster_fit_warns_and_matches_run(tiny_dataset, fast_config):
    factory = build_factory(tiny_dataset)
    via_run = SimulatedCluster(n_workers=2).run(
        factory, tiny_dataset, fast_config, seed=1
    )
    with pytest.deprecated_call():
        via_fit = SimulatedCluster(n_workers=2).fit(
            factory, tiny_dataset, fast_config, seed=1
        )
    assert state_checksum(via_fit.model.state_dict()) == state_checksum(
        via_run.model.state_dict()
    )


def make_ps(dataset):
    model = build_model("mlp", dataset, seed=0)
    return ParameterServer(
        model.state_dict(),
        embedding_names=embedding_parameter_names(model),
        outer_lr=1.0,
    )


def test_raw_ps_worker_warns_and_matches_client(tiny_dataset, fast_config):
    def run_epoch(make_worker):
        ps = make_ps(tiny_dataset)
        worker = make_worker(ps)
        worker.run_epoch(tiny_dataset, spawn_rng(0, "shim"))
        return state_checksum(ps.full_state())

    with pytest.deprecated_call():
        via_raw = run_epoch(lambda ps: Worker(
            0, build_model("mlp", tiny_dataset, seed=0), [0, 1], ps,
            fast_config,
        ))
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        via_client = run_epoch(lambda ps: Worker(
            0, build_model("mlp", tiny_dataset, seed=0), [0, 1],
            PSClient(DirectChannel(ps), 0), fast_config,
        ))
    assert via_raw == via_client


def test_supported_paths_do_not_warn(tiny_dataset, fast_config):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        SimulatedCluster(n_workers=2).run(
            build_factory(tiny_dataset), tiny_dataset, fast_config, seed=1
        )
