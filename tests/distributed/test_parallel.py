"""Multi-core parallel replay runtime: worker-count determinism.

``parallel_dn_epoch`` with one worker is exactly the sequential
Algorithm 1 epoch; ``parallel_dr_rounds`` keys every target's RNG from
``(seed, target)`` alone, so its result is byte-identical for *any*
worker count — including the in-process reference path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TrainConfig, domain_negotiation_epoch
from repro.core.param_space import DomainParameterSpace
from repro.data import DomainSpec, SyntheticConfig, generate_dataset
from repro.distributed import parallel_dn_epoch, parallel_dr_rounds
from repro.models import build_model
from repro.utils.seeding import spawn_rng

pytestmark = pytest.mark.compile_smoke


def make_dataset(n_domains, seed=0):
    specs = tuple(
        DomainSpec(f"P{i}", 80, 0.3 + 0.05 * i) for i in range(n_domains)
    )
    return generate_dataset(SyntheticConfig(
        name="par", domains=specs, n_users=100, n_items=60,
        latent_dim=4, feature_mode="fixed", feature_dim=8, seed=seed,
    ))


def assert_states_equal(reference, candidate):
    assert set(reference) == set(candidate)
    for name in reference:
        assert np.array_equal(reference[name], candidate[name]), name


def test_single_worker_dn_is_the_sequential_epoch():
    dataset = make_dataset(4)
    config = TrainConfig(batch_size=8, inner_steps=2)
    shared = build_model("mlp", dataset, seed=0).state_dict()

    sequential = domain_negotiation_epoch(
        build_model("mlp", dataset, seed=0), dataset,
        {k: v.copy() for k, v in shared.items()}, config, spawn_rng(2, "dn"),
    )
    parallel = parallel_dn_epoch(
        build_model("mlp", dataset, seed=0), dataset,
        {k: v.copy() for k, v in shared.items()}, config, spawn_rng(2, "dn"),
        n_workers=1,
    )
    assert_states_equal(sequential, parallel)


def test_dr_rounds_worker_count_invariant():
    dataset = make_dataset(4)
    config = TrainConfig(batch_size=8, sample_k=1, dr_steps=2)

    def run(n_workers):
        model = build_model("mlp", dataset, seed=0)
        space = DomainParameterSpace(model, dataset.n_domains)
        return parallel_dr_rounds(model, dataset, space, config, seed=13,
                                  n_workers=n_workers)

    reference = run(1)
    fanned = run(2)
    assert set(reference) == set(fanned)
    for target in reference:
        assert_states_equal(reference[target], fanned[target])
