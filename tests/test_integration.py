"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

import pytest

from repro.core import MAMDR, TrainConfig
from repro.data import amazon6_sim, taobao10_sim
from repro.distributed import SimulatedCluster
from repro.experiments import MethodSpec, run_comparison
from repro.frameworks import Alternate
from repro.metrics import evaluate_bank
from repro.models import build_model


@pytest.fixture(scope="module")
def small_amazon():
    return amazon6_sim(scale=0.4, seed=7)


def test_quickstart_path_learns(small_amazon):
    """The README quickstart flow must produce a model far above chance."""
    config = TrainConfig(epochs=6)
    model = build_model("mlp", small_amazon, seed=7)
    bank = MAMDR().fit(model, small_amazon, config, seed=7)
    report = evaluate_bank(bank, small_amazon, method="MLP+MAMDR")
    assert report.mean_auc > 0.62


def test_mamdr_beats_untrained_and_tracks_alternate(small_amazon):
    config = TrainConfig(epochs=6)
    alternate_model = build_model("mlp", small_amazon, seed=7)
    alternate = evaluate_bank(
        Alternate().fit(alternate_model, small_amazon, config, seed=7),
        small_amazon,
    ).mean_auc
    mamdr_model = build_model("mlp", small_amazon, seed=7)
    mamdr = evaluate_bank(
        MAMDR().fit(mamdr_model, small_amazon, config, seed=7),
        small_amazon,
    ).mean_auc
    # MAMDR must be at least competitive with alternate training here; the
    # full shape claims live in the benchmark harness.
    assert mamdr > alternate - 0.02


def test_distributed_quickstart(small_amazon):
    config = TrainConfig(epochs=3)
    cluster = SimulatedCluster(n_workers=2)
    bank = cluster.fit(
        lambda wid: build_model("mlp", small_amazon, seed=7),
        small_amazon, config, seed=7,
    )
    report = evaluate_bank(bank, small_amazon)
    assert report.mean_auc > 0.58


def test_experiment_runner_mini_table():
    dataset = taobao10_sim(scale=0.3, seed=5)
    config = TrainConfig(epochs=2, inner_steps=3, sample_k=1, dr_steps=2)
    specs = [
        MethodSpec("MLP", model="mlp"),
        MethodSpec("MLP+MAMDR", model="mlp", framework="mamdr"),
    ]
    result = run_comparison(specs, dataset, config=config, seed=5)
    rendered = result.render()
    assert "MLP+MAMDR" in rendered
    ranks = result.rank
    assert set(ranks.values()) <= {1.0, 1.5, 2.0} or all(
        1.0 <= r <= 2.0 for r in ranks.values()
    )


def test_model_agnosticism_across_zoo(small_amazon):
    """MAMDR must run on a structurally diverse subset of the zoo."""
    config = TrainConfig(epochs=1, inner_steps=2, sample_k=1, dr_steps=1)
    for name in ("wdl", "autoint", "star", "mmoe"):
        model = build_model(name, small_amazon, seed=1)
        bank = MAMDR().fit(model, small_amazon, config, seed=1)
        report = evaluate_bank(bank, small_amazon, method=name)
        assert len(report.per_domain) == small_amazon.n_domains


def test_reproducibility_end_to_end(small_amazon):
    config = TrainConfig(epochs=2, inner_steps=3, sample_k=1, dr_steps=2)

    def run():
        model = build_model("mlp", small_amazon, seed=3)
        bank = MAMDR().fit(model, small_amazon, config, seed=3)
        return evaluate_bank(bank, small_amazon).per_domain

    assert run() == run()
