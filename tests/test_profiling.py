"""Profiling harness: per-op counters, nesting, and the runner hook."""

from __future__ import annotations

import numpy as np

from repro.core import TrainConfig
from repro.experiments.runner import MethodSpec, run_method
from repro.nn import SGD, Embedding
from repro.nn import functional as F
from repro.utils import profiling

from tests.conftest import make_tiny_dataset


def tiny_train_step():
    rng = np.random.default_rng(0)
    emb = Embedding(20, 4, rng)
    opt = SGD(list(emb.parameters()), 0.1)
    ids = np.array([1, 3, 3, 7])
    labels = np.array([1.0, 0.0, 1.0, 0.0])
    loss = F.bce_with_logits(emb(ids).sum(axis=1), labels)
    opt.zero_grad()
    loss.backward()
    opt.step()


def test_tick_is_free_when_inactive():
    assert not profiling.is_active()
    assert profiling.tick() is None
    profiling.tock("nothing", None)  # must be a no-op, not an error


def test_profile_collects_hot_path_ops():
    with profiling.profile() as prof:
        tiny_train_step()
    assert not profiling.is_active()
    ops = prof.ops
    assert ops["embedding.forward"].calls == 1
    assert ops["embedding.backward.sparse"].calls == 1
    assert ops["loss.bce_fused_forward"].calls == 1
    assert ops["optim.step"].calls == 1
    assert ops["embedding.forward"].bytes_allocated > 0
    assert prof.total_seconds() > 0.0


def test_profiles_nest():
    outer = profiling.Profile()
    with outer:
        tiny_train_step()
        with profiling.profile() as inner:
            tiny_train_step()
    assert outer.ops["optim.step"].calls == 2
    assert inner.ops["optim.step"].calls == 1


def test_render_and_as_dict():
    with profiling.profile() as prof:
        tiny_train_step()
    table = prof.render(title="hot path")
    assert "embedding.forward" in table and "hot path" in table
    summary = prof.as_dict()
    assert summary["optim.step"]["calls"] == 1
    # sorted by total seconds descending
    seconds = [entry["seconds"] for entry in summary.values()]
    assert seconds == sorted(seconds, reverse=True)


def test_runner_profiler_hook():
    dataset = make_tiny_dataset("trainable", n_domains=2, samples=(60, 40))
    config = TrainConfig(epochs=1, batch_size=16, inner_steps=2)
    prof = profiling.Profile()
    report = run_method(
        MethodSpec(name="probe", model="mlp", framework="alternate"),
        dataset, config=config, profiler=prof,
    )
    assert report.mean_auc > 0.0
    assert prof.ops["train.step"].calls > 0
    assert prof.ops["embedding.backward.sparse"].calls > 0
