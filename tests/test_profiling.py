"""Profiling harness: per-op counters, nesting, and the runner hook."""

from __future__ import annotations

import numpy as np

from repro.core import TrainConfig
from repro.experiments.runner import MethodSpec, run_method
from repro.nn import SGD, Embedding
from repro.nn import functional as F
from repro.utils import profiling

from tests.conftest import make_tiny_dataset


def tiny_train_step():
    rng = np.random.default_rng(0)
    emb = Embedding(20, 4, rng)
    opt = SGD(list(emb.parameters()), 0.1)
    ids = np.array([1, 3, 3, 7])
    labels = np.array([1.0, 0.0, 1.0, 0.0])
    loss = F.bce_with_logits(emb(ids).sum(axis=1), labels)
    opt.zero_grad()
    loss.backward()
    opt.step()


def test_tick_is_free_when_inactive():
    assert not profiling.is_active()
    assert profiling.tick() is None
    profiling.tock("nothing", None)  # must be a no-op, not an error


def test_profile_collects_hot_path_ops():
    with profiling.profile() as prof:
        tiny_train_step()
    assert not profiling.is_active()
    ops = prof.ops
    assert ops["embedding.forward"].calls == 1
    assert ops["embedding.backward.sparse"].calls == 1
    assert ops["loss.bce_fused_forward"].calls == 1
    assert ops["optim.step"].calls == 1
    assert ops["embedding.forward"].bytes_allocated > 0
    assert prof.total_seconds() > 0.0


def test_profiles_nest():
    outer = profiling.Profile()
    with outer:
        tiny_train_step()
        with profiling.profile() as inner:
            tiny_train_step()
    assert outer.ops["optim.step"].calls == 2
    assert inner.ops["optim.step"].calls == 1


def test_render_and_as_dict():
    with profiling.profile() as prof:
        tiny_train_step()
    table = prof.render(title="hot path")
    assert "embedding.forward" in table and "hot path" in table
    summary = prof.as_dict()
    assert summary["optim.step"]["calls"] == 1
    # sorted by total seconds descending
    seconds = [entry["seconds"] for entry in summary.values()]
    assert seconds == sorted(seconds, reverse=True)


def test_percentile_linear_interpolation_matches_numpy():
    rng = np.random.default_rng(7)
    samples = list(rng.normal(size=37))
    for q in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
        np.testing.assert_allclose(
            profiling.percentile(samples, q), np.percentile(samples, q * 100)
        )


def test_percentile_linear_is_smooth_at_small_n():
    # Nearest-rank p99 of 4 samples is just the max; linear interpolates.
    samples = [1.0, 2.0, 3.0, 10.0]
    linear = profiling.percentile(samples, 0.99)
    assert 3.0 < linear < 10.0
    assert profiling.percentile(samples, 0.99, method="nearest") == 10.0


def test_percentile_nearest_returns_witness_values():
    samples = [5.0, 1.0, 3.0]
    for q in (0.0, 0.3, 0.5, 0.77, 1.0):
        assert profiling.percentile(samples, q, method="nearest") in samples


def test_percentile_edges_and_validation():
    assert profiling.percentile([4.0], 0.99) == 4.0
    assert profiling.percentile([1.0, 2.0], 0.0) == 1.0
    assert profiling.percentile([1.0, 2.0], 1.0) == 2.0
    assert profiling.percentile([1.0, 2.0], 0.5) == 1.5
    import pytest

    with pytest.raises(ValueError):
        profiling.percentile([], 0.5)
    with pytest.raises(ValueError):
        profiling.percentile([1.0], 1.5)
    with pytest.raises(ValueError):
        profiling.percentile([1.0], 0.5, method="cubic")


def test_runner_profiler_hook():
    dataset = make_tiny_dataset("trainable", n_domains=2, samples=(60, 40))
    config = TrainConfig(epochs=1, batch_size=16, inner_steps=2)
    prof = profiling.Profile()
    report = run_method(
        MethodSpec(name="probe", model="mlp", framework="alternate"),
        dataset, config=config, profiler=prof,
    )
    assert report.mean_auc > 0.0
    assert prof.ops["train.step"].calls > 0
    assert prof.ops["embedding.backward.sparse"].calls > 0


def test_tape_breakdown_aggregates_compiled_kernels():
    from repro.models import build_model
    from repro.nn import compiled_execution
    from repro.nn.optim import make_optimizer
    from repro.utils.seeding import spawn_rng
    from repro.data.batching import iter_minibatches

    dataset = make_tiny_dataset("fixed", n_domains=2, samples=(60, 40))
    model = build_model("mlp", dataset, seed=0)
    optimizer = make_optimizer("adam", model.parameters(), 0.05)
    from repro.nn.compile import executor_for
    executor = executor_for(model)
    batches = list(iter_minibatches(
        dataset.domains[0].train, 0, 8, rng=spawn_rng(0, "prof"),
        max_batches=4,
    ))
    with compiled_execution(), profiling.profile() as compiled_prof:
        for batch in batches:
            start = profiling.tick()
            executor.step(batch, optimizer)
            profiling.tock("train.step", start)
    breakdown = profiling.tape_breakdown(compiled_prof)
    assert "fused_dense" in breakdown and "bce" in breakdown
    # the traced first step runs eagerly; the replays time every kernel
    assert breakdown["bce"]["fwd_calls"] >= len(batches) - 1
    assert abs(sum(r["share"] for r in breakdown.values()) - 1.0) < 1e-9
    rendered = profiling.render_tape_breakdown(compiled_prof)
    assert "fused_dense" in rendered

    with profiling.profile() as eager_prof:
        for batch in batches:
            start = profiling.tick()
            loss = model.loss(batch)
            model.zero_grad()
            loss.backward()
            optimizer.step()
            profiling.tock("train.step", start)
    comparison = profiling.step_speedup(eager_prof, compiled_prof)
    assert comparison["speedup"] > 0
    assert comparison["breakdown"]
