"""Incremental trainer: replay, temporal holdouts, warm-start parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    domain_negotiation_epoch,
    domain_regularization_round,
    make_inner_optimizer,
)
from repro.data.schema import InteractionTable
from repro.online import IncrementalTrainer, ReplayBuffer, space_from_snapshot
from repro.serving import SnapshotStore
from repro.utils.seeding import spawn_rng

from tests.online.conftest import make_stream_model

pytestmark = pytest.mark.online


def _table(start, n, label=1.0):
    ids = np.arange(start, start + n)
    return InteractionTable(ids, ids, np.full(n, label))


def make_trainer(stream, skeleton, config, **overrides):
    model = make_stream_model(skeleton)
    kwargs = dict(
        backend="local", replay_capacity=400, holdout_frac=0.25,
        holdout_capacity=120, dataset_name=stream.config.name,
        n_users=stream.config.n_users, n_items=stream.config.n_items,
        seed=stream.config.seed,
    )
    kwargs.update(overrides)
    return IncrementalTrainer(
        model, stream.config.n_domains, config, **kwargs
    )


# ----------------------------------------------------------------------
# Replay buffer
# ----------------------------------------------------------------------
def test_replay_buffer_slides_keeping_newest():
    buffer = ReplayBuffer(capacity=5)
    buffer.extend(0, _table(0, 4))
    buffer.extend(0, _table(4, 4))
    kept = buffer.table(0)
    assert len(kept) == 5
    np.testing.assert_array_equal(kept.users, np.arange(3, 8))
    assert buffer.size(0) == 5
    assert buffer.size(1) == 0
    with pytest.raises(KeyError):
        buffer.table(1)


def test_replay_buffer_tracks_domains_independently():
    buffer = ReplayBuffer(capacity=10)
    buffer.extend(0, _table(0, 3))
    buffer.extend(2, _table(100, 4))
    assert buffer.domains() == [0, 2]
    assert buffer.size(0) == 3
    assert buffer.size(2) == 4


def test_replay_buffer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        ReplayBuffer(capacity=0)


# ----------------------------------------------------------------------
# Ingestion: temporal split, holdout isolation
# ----------------------------------------------------------------------
def test_ingest_keeps_holdout_disjoint_from_replay(stream, skeleton,
                                                   online_config):
    trainer = make_trainer(stream, skeleton, online_config)
    window = stream.window(0)
    trainer.ingest(window)
    for domain, (table, times) in window.per_domain().items():
        replayed = trainer.replay.table(domain)
        held = trainer.holdout_buffer.table(domain)
        # The window partitions exactly: earliest rows train, the most
        # recent slice is held out, nothing overlaps and nothing is lost.
        assert len(replayed) + len(held) == len(table)
        np.testing.assert_array_equal(replayed.users,
                                      table.users[:len(replayed)])
        np.testing.assert_array_equal(held.users,
                                      table.users[len(replayed):])
        # The split point matches the recorded watermark: every replayed
        # event is at or before it, every held-out event after.
        cutoff = trainer.holdout_watermarks.get(domain)
        if cutoff is not None:
            assert times[len(replayed) - 1] <= cutoff < times[len(replayed)]
    assert trainer.ingested_events == len(window)
    assert trainer.last_watermark == window.watermark


def test_holdouts_accumulate_across_windows(stream, skeleton, online_config):
    trainer = make_trainer(stream, skeleton, online_config)
    trainer.ingest(stream.window(0))
    sizes_before = {d: len(t) for d, t in trainer.holdouts.items()}
    trainer.ingest(stream.window(1))
    assert any(
        len(trainer.holdouts[d]) > sizes_before.get(d, 0)
        for d in trainer.holdouts
    )


def test_window_dataset_requires_bootstrap(stream, skeleton, online_config):
    trainer = make_trainer(stream, skeleton, online_config)
    with pytest.raises(ValueError, match="bootstrap"):
        trainer.window_dataset()


def test_window_dataset_uses_holdout_as_val(stream, skeleton, online_config):
    trainer = make_trainer(stream, skeleton, online_config)
    trainer.ingest(stream.window(0))
    trainer.ingest(stream.window(1))
    dataset = trainer.window_dataset()
    assert dataset.n_domains == stream.config.n_domains
    for domain in dataset.domains:
        assert domain.val is trainer.holdouts[domain.index]
        assert domain.test is domain.val
        assert len(domain.train) == trainer.replay.size(domain.index)


# ----------------------------------------------------------------------
# Updates
# ----------------------------------------------------------------------
def test_update_states_match_live_space(stream, skeleton, online_config):
    trainer = make_trainer(stream, skeleton, online_config)
    trainer.ingest(stream.window(0))
    trainer.ingest(stream.window(1))
    update = trainer.update(key=1)
    assert update.key == 1
    assert update.domains == list(range(stream.config.n_domains))
    for domain in update.domains:
        expected = trainer.space.combined(domain)
        for name, value in update.states[domain].items():
            np.testing.assert_array_equal(value, expected[name])
    for name, value in update.default_state.items():
        np.testing.assert_array_equal(value, trainer.space.shared[name])


def test_update_is_deterministic_given_key(stream, skeleton, online_config):
    results = []
    for _ in range(2):
        trainer = make_trainer(stream, skeleton, online_config)
        trainer.ingest(stream.window(0))
        trainer.ingest(stream.window(1))
        results.append(trainer.update(key=7))
    for domain in results[0].domains:
        for name in results[0].states[domain]:
            np.testing.assert_array_equal(
                results[0].states[domain][name],
                results[1].states[domain][name],
            )


def test_space_from_snapshot_round_trips(stream, skeleton, online_config):
    trainer = make_trainer(stream, skeleton, online_config)
    trainer.ingest(stream.window(0))
    trainer.ingest(stream.window(1))
    update = trainer.update(key=0)
    store = SnapshotStore()
    snapshot = store.publish_states(
        update.states, default_state=update.default_state
    )
    fresh = make_stream_model(skeleton)
    space = space_from_snapshot(fresh, snapshot)
    for domain in update.domains:
        combined = space.combined(domain)
        for name, value in snapshot.state_for(domain).items():
            np.testing.assert_array_equal(combined[name], value)


def test_space_from_snapshot_needs_default_state(stream, skeleton,
                                                 online_config):
    trainer = make_trainer(stream, skeleton, online_config)
    trainer.ingest(stream.window(0))
    trainer.ingest(stream.window(1))
    update = trainer.update(key=0)
    snapshot = SnapshotStore().publish_states(update.states)
    with pytest.raises(ValueError, match="shared"):
        space_from_snapshot(make_stream_model(skeleton), snapshot)


def test_warm_start_parity_with_offline_step(stream, skeleton, online_config):
    """An incremental update from a snapshot is byte-identical to the same
    DN+DR step replicated offline on the same data — update() is a pure
    function of (space, window dataset, key)."""
    # Pipeline A: train a little and publish a snapshot.
    pioneer = make_trainer(stream, skeleton, online_config)
    pioneer.ingest(stream.window(0))
    pioneer.ingest(stream.window(1))
    update = pioneer.update(key=1)
    snapshot = SnapshotStore().publish_states(
        update.states, default_state=update.default_state
    )

    # Pipeline B: a fresh trainer warm-starts from the snapshot and takes
    # the next incremental step.
    warm = make_trainer(stream, skeleton, online_config)
    warm.ingest(stream.window(0))
    warm.ingest(stream.window(1))
    warm.ingest(stream.window(2))
    warm.warm_start(snapshot)
    online_step = warm.update(key=2)

    # Pipeline C: the same step replicated by hand offline — rebuild the
    # space from the snapshot, run DN then DR with the same namespaced RNG.
    model = make_stream_model(skeleton)
    loader = make_trainer(stream, skeleton, online_config)
    loader.ingest(stream.window(0))
    loader.ingest(stream.window(1))
    loader.ingest(stream.window(2))
    dataset = loader.window_dataset()
    space = space_from_snapshot(model, snapshot)
    model.load_state_dict(space.shared)
    rng = spawn_rng(stream.config.seed, "online", "update", 2)
    optimizer = make_inner_optimizer(model, online_config)
    shared = space.shared
    for _ in range(online_config.dn_rounds):
        shared = domain_negotiation_epoch(
            model, dataset, shared, online_config, rng, optimizer=optimizer,
        )
    space.set_shared(shared)
    for domain in range(stream.config.n_domains):
        space.set_delta(domain, domain_regularization_round(
            model, dataset, space, domain, online_config, rng,
        ))

    for domain in online_step.domains:
        offline = space.combined(domain)
        for name, value in online_step.states[domain].items():
            np.testing.assert_array_equal(value, offline[name])


def test_cluster_backend_runs_an_update(stream, skeleton, online_config):
    trainer = make_trainer(
        stream, skeleton, online_config,
        backend="cluster",
        replica_factory=lambda: make_stream_model(skeleton),
        n_workers=2,
    )
    trainer.ingest(stream.window(0))
    trainer.ingest(stream.window(1))
    update = trainer.update(key=0)
    assert update.domains == list(range(stream.config.n_domains))


def test_trainer_rejects_bad_arguments(stream, skeleton, online_config):
    with pytest.raises(ValueError, match="backend"):
        make_trainer(stream, skeleton, online_config, backend="gpu")
    with pytest.raises(ValueError, match="replica_factory"):
        make_trainer(stream, skeleton, online_config, backend="cluster")
    with pytest.raises(ValueError, match="holdout_frac"):
        make_trainer(stream, skeleton, online_config, holdout_frac=1.5)
