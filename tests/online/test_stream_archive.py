"""Stream archives: columnar recording and replay of micro-epochs.

An archive must be a faithful stand-in for the live :class:`EventStream`
— same config, same windows bit for bit — so every stream consumer
(the incremental trainer's ingest loop, the traffic tracegen adapter)
replays recorded data without modification.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.columnar import write_dataset
from repro.nn.serialization import SerializationError
from repro.online import IncrementalTrainer
from repro.online.stream import EventStream, StreamArchive, write_stream

from tests.conftest import make_tiny_dataset
from tests.online.conftest import make_stream_model, small_stream_config

pytestmark = pytest.mark.online


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory):
    stream = EventStream(small_stream_config())
    path = tmp_path_factory.mktemp("archive") / "stream.col"
    write_stream(path, stream)
    return path


def test_archive_round_trips_every_window(archive_path):
    stream = EventStream(small_stream_config())
    archive = StreamArchive.open(archive_path, verify=True)

    assert archive.config == stream.config  # StreamConfig is all primitives
    assert archive.window_indices == list(range(stream.config.n_windows))

    for live, replayed in zip(stream.windows(), archive.windows()):
        assert replayed.index == live.index
        assert replayed.start_time == live.start_time
        assert replayed.watermark == live.watermark
        assert replayed.drift == pytest.approx(live.drift)
        np.testing.assert_array_equal(replayed.users, live.users)
        np.testing.assert_array_equal(replayed.items, live.items)
        np.testing.assert_array_equal(replayed.labels, live.labels)
        np.testing.assert_array_equal(replayed.domains, live.domains)
        np.testing.assert_array_equal(replayed.times, live.times)
        assert replayed.times.dtype == np.int64  # exact event clock

    del live, replayed
    archive.close()


def test_windows_are_zero_copy_views(archive_path):
    archive = StreamArchive.open(archive_path)
    window = archive.window(2)
    assert window.users.base is not None
    assert window.times.base is not None
    archive.release()                      # views survive a page release
    assert window.watermark == window.times[-1]
    del window
    archive.close()


def test_partial_archive_and_missing_window(tmp_path):
    stream = EventStream(small_stream_config())
    path = tmp_path / "partial.col"
    write_stream(path, stream, windows=(1, 3))

    archive = StreamArchive.open(path)
    assert archive.window_indices == [1, 3]
    np.testing.assert_array_equal(
        archive.window(3).labels, stream.window(3).labels
    )
    with pytest.raises(IndexError, match=r"available: \[1, 3\]"):
        archive.window(0)
    archive.close()


def test_archive_rejects_non_stream_file(tmp_path):
    path = tmp_path / "dataset.col"
    write_dataset(path, make_tiny_dataset("trainable"))
    with pytest.raises(SerializationError, match="not a stream archive"):
        StreamArchive.open(path)


def test_ingest_archive_matches_live_ingest(archive_path, skeleton,
                                            online_config):
    """Replaying the archive leaves the trainer in the same state —
    replay buffers, holdouts, watermarks — as ingesting the live
    stream window by window."""
    stream = EventStream(small_stream_config())
    n_domains = stream.config.n_domains

    live = IncrementalTrainer(make_stream_model(skeleton), n_domains,
                              online_config)
    live_counts = {
        window.index: live.ingest(window) for window in stream.windows()
    }

    archive = StreamArchive.open(archive_path)
    replayed = IncrementalTrainer(make_stream_model(skeleton), n_domains,
                                  online_config)
    replay_counts = replayed.ingest_archive(archive, release_every=2)

    assert replay_counts == live_counts
    assert replayed.ingested_events == live.ingested_events
    assert replayed.last_watermark == live.last_watermark
    assert replayed.replay.domains() == live.replay.domains()
    for domain in live.replay.domains():
        a = live.replay.table(domain)
        b = replayed.replay.table(domain)
        np.testing.assert_array_equal(a.users, b.users)
        np.testing.assert_array_equal(a.items, b.items)
        np.testing.assert_array_equal(a.labels, b.labels)
    assert replayed.holdout_watermarks == live.holdout_watermarks
    assert set(replayed.holdouts) == set(live.holdouts)
    for domain, table in live.holdouts.items():
        np.testing.assert_array_equal(
            table.labels, replayed.holdouts[domain].labels
        )

    # The trainer's state owns its memory: the archive closes cleanly
    # (no BufferError) and the buffers stay readable afterwards.
    archive.close()
    assert int(replayed.replay.table(0).users.sum()) >= 0
