"""Validation gate + gated publisher: accept, reject, rollback, quarantine."""

from __future__ import annotations

import json

import pytest

from repro.online import GateConfig, GatedPublisher, ValidationGate
from repro.serving import SnapshotStore
from repro.utils.seeding import spawn_rng

from tests.online.conftest import make_stream_model
from tests.online.test_trainer import make_trainer

pytestmark = pytest.mark.online


@pytest.fixture(scope="module")
def candidate(stream, skeleton):
    """A real incremental update: (states, default_state, holdouts)."""
    from repro.core import TrainConfig

    config = TrainConfig(epochs=1, batch_size=64, inner_steps=2, dn_rounds=1,
                         sample_k=1, dr_steps=1)
    trainer = make_trainer(stream, skeleton, config)
    trainer.ingest(stream.window(0))
    trainer.ingest(stream.window(1))
    update = trainer.update(key=1)
    return update.states, update.default_state, dict(trainer.holdouts)


def corrupt(states, scale=5.0, seed=99):
    rng = spawn_rng(seed, "test", "corrupt")
    return {
        domain: {
            name: value + rng.normal(0.0, scale, size=value.shape)
            for name, value in state.items()
        }
        for domain, state in states.items()
    }


def make_publisher(skeleton, keep=3, gate_config=None):
    store = SnapshotStore(keep=keep)
    # The unit-test holdouts are tiny (a couple dozen rows), well below the
    # production min_samples floor — enforce on everything, and leave
    # calibration slack so accept/reject hinges on the AUC-drop guard.
    gate = ValidationGate(
        make_stream_model(skeleton),
        gate_config or GateConfig(min_samples=2, max_ctr_ratio_error=5.0),
    )
    return GatedPublisher(store, gate), store


# ----------------------------------------------------------------------
# Gate config and decisions
# ----------------------------------------------------------------------
def test_gate_config_validation():
    with pytest.raises(ValueError):
        GateConfig(max_auc_drop=-0.1)
    with pytest.raises(ValueError):
        GateConfig(max_ctr_ratio_error=0.0)
    with pytest.raises(ValueError):
        GateConfig(min_samples=1)
    with pytest.raises(ValueError):
        GateConfig(bootstrap_ctr_slack=0.5)


def test_gate_requires_scoreable_holdout(skeleton, candidate):
    states, _default, _holdouts = candidate
    gate = ValidationGate(make_stream_model(skeleton))
    with pytest.raises(ValueError, match="scoreable"):
        gate.evaluate(states, holdouts={})


def test_decision_is_json_serializable(skeleton, candidate):
    states, _default, holdouts = candidate
    gate = ValidationGate(make_stream_model(skeleton))
    decision = gate.evaluate(states, holdouts)
    payload = json.loads(json.dumps(decision.as_dict()))
    assert payload["accepted"] == decision.accepted
    assert set(payload["domains"]) == {str(d) for d in decision.verdicts}
    for verdict in payload["domains"].values():
        assert {"auc", "auc_drop", "calibration_error",
                "enforced"} <= set(verdict)


def test_small_domains_cannot_veto(skeleton, candidate):
    """Below min_samples a domain is scored but never enforced, so even a
    wrecked candidate passes when every holdout is tiny."""
    states, _default, holdouts = candidate
    gate = ValidationGate(
        make_stream_model(skeleton),
        GateConfig(min_samples=10_000, max_ctr_ratio_error=1e-6),
    )
    decision = gate.evaluate(corrupt(states), holdouts)
    assert decision.accepted
    assert all(not v.enforced for v in decision.verdicts.values())


def test_bootstrap_slack_widens_calibration_only_without_baseline(
        skeleton, candidate):
    """The calibration bound relaxes by bootstrap_ctr_slack only for the
    bootstrap publication (no baseline to roll back to)."""
    states, default, holdouts = candidate
    probe = ValidationGate(make_stream_model(skeleton))
    ratios = [
        probe.evaluate(states, holdouts).verdicts[d].calibration_error
        for d in probe.evaluate(states, holdouts).verdicts
    ]
    worst = max(ratios)
    assert worst > 0.0
    gate = ValidationGate(
        make_stream_model(skeleton),
        GateConfig(max_auc_drop=10.0, max_ctr_ratio_error=worst * 0.9,
                   min_samples=2, bootstrap_ctr_slack=2.0),
    )
    # Bootstrap: bound is 1.8x the worst observed error — passes.
    assert gate.evaluate(states, holdouts, baseline=None).accepted
    # With a served baseline the strict bound applies — the same candidate
    # now fails calibration.
    baseline = SnapshotStore().publish_states(states, default_state=default)
    decision = gate.evaluate(states, holdouts, baseline=baseline)
    assert not decision.accepted
    assert any("miscalibrated" in reason for reason in decision.reasons)


# ----------------------------------------------------------------------
# Publisher: accept / reject / rollback
# ----------------------------------------------------------------------
def test_accept_path_publishes_and_records(skeleton, candidate):
    states, default, holdouts = candidate
    publisher, store = make_publisher(skeleton)
    first = publisher.publish(states, default, holdouts, key="boot")
    assert first.accepted and first.version == 1
    # Republishing identical states against themselves: zero AUC drop,
    # identical calibration — must clear every guard.
    second = publisher.publish(states, default, holdouts, key=2)
    assert second.accepted
    assert second.version == second.served_version == 2
    assert store.version == 2
    assert publisher.accepted_versions == [1, 2]
    assert store.current().metadata["update_key"] == 2
    assert publisher.quarantine == []


def test_reject_rolls_back_and_quarantines(skeleton, candidate):
    states, default, holdouts = candidate
    publisher, store = make_publisher(skeleton)
    publisher.publish(states, default, holdouts, key=1)
    result = publisher.publish(
        corrupt(states), default, holdouts, key=2
    )
    assert not result.accepted
    assert result.version == 2
    assert result.served_version == 1
    assert store.version == 1           # serving the last good version
    record = result.quarantine
    assert record is publisher.quarantine[0]
    assert record.version == 2
    assert record.rolled_back_to == 1
    assert record.key == 2
    assert record.reasons                # diagnosable, not a silent skip
    assert json.loads(json.dumps(record.as_dict()))["version"] == 2
    # The pipeline keeps going: the next good candidate publishes cleanly.
    recovery = publisher.publish(states, default, holdouts, key=3)
    assert recovery.accepted
    assert store.version == recovery.version


def test_rollback_survives_retention_pressure(skeleton, candidate):
    """keep=1 is the worst case: the baseline must still be retained when
    the gate fails, because _prune never evicts the rollback anchor."""
    states, default, holdouts = candidate
    publisher, store = make_publisher(skeleton, keep=1)
    publisher.publish(states, default, holdouts, key=1)
    result = publisher.publish(corrupt(states), default, holdouts, key=2)
    assert not result.accepted
    assert store.version == 1


def test_bootstrap_failure_raises(skeleton, candidate):
    states, default, holdouts = candidate
    publisher, store = make_publisher(
        skeleton, gate_config=GateConfig(max_ctr_ratio_error=1e-9,
                                         min_samples=2),
    )
    with pytest.raises(RuntimeError, match="bootstrap"):
        publisher.publish(states, default, holdouts, key=0)
    assert publisher.quarantine      # still recorded for diagnosis
