"""Shared fixtures for the continual-learning pipeline tests."""

from __future__ import annotations

import pytest

from repro.core import TrainConfig
from repro.models import build_model
from repro.online import EventStream, StreamConfig


def small_stream_config(**overrides):
    """A stream small enough for per-test generation and training."""
    base = dict(
        n_domains=3, n_users=120, n_items=80, latent_dim=6,
        n_windows=4, window_events=180, drift_rate=0.2, seed=0,
    )
    base.update(overrides)
    return StreamConfig(**base)


@pytest.fixture(scope="module")
def stream():
    return EventStream(small_stream_config())


@pytest.fixture(scope="module")
def skeleton(stream):
    return stream.skeleton_dataset()


@pytest.fixture()
def online_config():
    """A DN/DR schedule sized for micro-epoch unit tests."""
    return TrainConfig(
        epochs=1, batch_size=64, inner_steps=2, dn_rounds=1,
        sample_k=1, dr_steps=1,
    )


def make_stream_model(skeleton, seed=0):
    return build_model("mlp", skeleton, seed=seed)
