"""Drift monitor: population stability and gradient-conflict probes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.online import DriftMonitor, EventStream, population_stability_index

from tests.online.conftest import make_stream_model, small_stream_config
from tests.online.test_trainer import make_trainer

pytestmark = pytest.mark.online


# ----------------------------------------------------------------------
# PSI
# ----------------------------------------------------------------------
def test_psi_zero_for_identical_distributions():
    p = np.array([0.2, 0.3, 0.5])
    assert population_stability_index(p, p) == pytest.approx(0.0)


def test_psi_positive_and_grows_with_shift():
    reference = np.array([0.25, 0.25, 0.25, 0.25])
    mild = np.array([0.3, 0.25, 0.25, 0.2])
    severe = np.array([0.7, 0.1, 0.1, 0.1])
    assert population_stability_index(reference, mild) > 0.0
    assert (population_stability_index(reference, severe)
            > population_stability_index(reference, mild))


def test_psi_symmetric_in_direction():
    a = np.array([0.6, 0.2, 0.2])
    b = np.array([0.2, 0.2, 0.6])
    assert population_stability_index(a, b) == pytest.approx(
        population_stability_index(b, a)
    )


def test_psi_handles_empty_bins_finitely():
    reference = np.array([0.5, 0.5, 0.0])
    current = np.array([0.0, 0.5, 0.5])
    psi = population_stability_index(reference, current)
    assert np.isfinite(psi) and psi > 0.0


def test_psi_input_validation():
    with pytest.raises(ValueError, match="aligned"):
        population_stability_index([0.5, 0.5], [1.0])
    with pytest.raises(ValueError, match="non-empty"):
        population_stability_index([0.0, 0.0], [0.5, 0.5])


# ----------------------------------------------------------------------
# Monitor over stream windows
# ----------------------------------------------------------------------
def test_first_window_freezes_reference_and_scores_zero(stream):
    monitor = DriftMonitor(stream.config.n_items)
    record = monitor.observe(stream.window(0))
    assert record["window"] == 0
    for entry in record["domains"].values():
        assert entry["item_psi"] == pytest.approx(0.0)
        assert entry["ctr_shift"] == pytest.approx(0.0)


def test_drifted_windows_score_higher_than_stationary():
    """Under heavy popularity drift the item-traffic PSI must rise well
    above the noise floor of a same-distribution stream."""
    drifting = EventStream(small_stream_config(
        n_windows=6, drift_rate=0.18, window_events=300,
    ))
    stationary = EventStream(small_stream_config(
        n_windows=6, drift_rate=0.0, window_events=300, seed=3,
    ))

    def late_psi(stream):
        monitor = DriftMonitor(stream.config.n_items)
        for window in stream.windows():
            record = monitor.observe(window)
        return max(e["item_psi"] for e in record["domains"].values())

    assert late_psi(drifting) > 2 * late_psi(stationary)


def test_history_accumulates_in_window_order(stream):
    monitor = DriftMonitor(stream.config.n_items)
    for window in stream.windows():
        monitor.observe(window)
    assert [r["window"] for r in monitor.history] == list(
        range(stream.config.n_windows)
    )
    assert [r["watermark"] for r in monitor.history] == sorted(
        r["watermark"] for r in monitor.history
    )


def test_conflict_probe_attaches_report(stream, skeleton, online_config):
    trainer = make_trainer(stream, skeleton, online_config)
    monitor = DriftMonitor(stream.config.n_items,
                           seed=stream.config.seed)
    for index in range(2):
        window = stream.window(index)
        monitor.observe(window)
        trainer.ingest(window)
    model = make_stream_model(skeleton)
    model.load_state_dict(trainer.space.shared)
    report = monitor.conflict(model, trainer.window_dataset(), key=1)
    assert 0.0 <= report["conflict_rate"] <= 1.0
    assert monitor.history[-1]["conflict"] is report


def test_conflict_probe_is_deterministic(stream, skeleton, online_config):
    reports = []
    for _ in range(2):
        trainer = make_trainer(stream, skeleton, online_config)
        monitor = DriftMonitor(stream.config.n_items,
                               seed=stream.config.seed)
        for index in range(2):
            window = stream.window(index)
            monitor.observe(window)
            trainer.ingest(window)
        model = make_stream_model(skeleton)
        model.load_state_dict(trainer.space.shared)
        reports.append(monitor.conflict(model, trainer.window_dataset(),
                                        key=1))
    assert reports[0]["conflict_rate"] == reports[1]["conflict_rate"]
    assert reports[0]["mean_cosine"] == reports[1]["mean_cosine"]
