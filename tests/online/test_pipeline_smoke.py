"""End-to-end continual-learning smoke: ingest → update → gate → serve."""

from __future__ import annotations

import json

import pytest

from repro.online import (
    OnlineSimConfig,
    render_online_sim,
    run_online_sim,
    write_bench_record,
)
from repro.train import ConfigError

pytestmark = [pytest.mark.online, pytest.mark.online_smoke]


def smoke_config(**overrides):
    base = dict(
        stream={"n_domains": 3, "n_users": 120, "n_items": 80,
                "latent_dim": 6, "n_windows": 5, "window_events": 240,
                "drift_rate": 0.2, "seed": 0},
        bootstrap_windows=2, bootstrap_updates=1, inject_regression_at=3,
        replay_capacity=600, holdout_capacity=150, parity_samples=32,
        seed=0,
    )
    base.update(overrides)
    return OnlineSimConfig(**base)


@pytest.fixture(scope="module")
def results():
    return run_online_sim(smoke_config())


def test_pipeline_publishes_and_catches_injected_regression(results):
    publications = results["publications"]
    assert publications["accepted"] >= 2
    assert publications["rejected"] == 1
    quarantined = publications["quarantine"][0]
    assert quarantined["key"] == 3          # the injected window
    assert quarantined["rolled_back_to"] in publications["accepted_versions"]
    assert quarantined["reasons"]
    # The final accepted version is what serving answers from.
    assert publications["served_version"] == max(
        publications["accepted_versions"]
    )


def test_serving_parity_is_bit_exact(results):
    assert results["parity"]["exact"]
    assert results["parity"]["max_abs_diff"] == 0.0
    assert results["parity"]["n_requests"] > 0


def test_prequential_records_cover_steady_state(results):
    records = results["auc_over_time"]
    assert [r["window"] for r in records] == [2, 3, 4]
    for record in records:
        assert 0.0 <= record["incremental_auc"] <= 1.0
        assert 0.0 <= record["frozen_auc"] <= 1.0
        assert record["max_item_psi"] >= 0.0
    assert records[1]["injected_regression"]
    assert not records[1]["accepted"]
    assert records[-1]["accepted"]


def test_throughput_and_staleness_are_recorded(results):
    assert results["events"]["total"] == 5 * 240
    assert results["events"]["events_per_sec"] > 0
    assert results["update_latency"]["count"] == 4   # 1 bootstrap + 3 steady
    assert results["update_latency"]["p95_s"] >= results["update_latency"][
        "mean_s"] * 0.5
    assert results["staleness"]["max_windows"] >= 0


def test_render_and_bench_record_round_trip(results, tmp_path):
    rendered = render_online_sim(results)
    assert "Online continual-learning simulation" in rendered
    assert "serving parity: bit-exact" in rendered
    path = write_bench_record(results, tmp_path / "BENCH_online.json")
    payload = json.loads(path.read_text())
    record = payload["benchmarks"]["online_sim"]
    assert record["parity_exact"] is True
    assert record["publications_rejected"] == 1
    assert len(record["auc_over_time"]) == 3
    # Re-writing merges rather than clobbering the journal.
    payload["benchmarks"]["other"] = {"kept": True}
    path.write_text(json.dumps(payload))
    write_bench_record(results, path)
    merged = json.loads(path.read_text())
    assert merged["benchmarks"]["other"] == {"kept": True}


def test_config_validation_uses_config_error():
    with pytest.raises(ConfigError, match="bootstrap_windows"):
        smoke_config(bootstrap_windows=5)
    with pytest.raises(ConfigError, match="inject_regression_at"):
        smoke_config(inject_regression_at=4)
    with pytest.raises(ConfigError, match="'stream' section"):
        smoke_config(stream={"n_windowz": 5})
