"""Event-stream simulator: determinism, ordering, skew, drift."""

from __future__ import annotations

import numpy as np
import pytest

from repro.online import EventStream, StreamConfig

from tests.online.conftest import small_stream_config

pytestmark = pytest.mark.online


def test_same_seed_gives_identical_stream():
    a = EventStream(small_stream_config())
    b = EventStream(small_stream_config())
    for wa, wb in zip(a.windows(), b.windows()):
        np.testing.assert_array_equal(wa.users, wb.users)
        np.testing.assert_array_equal(wa.items, wb.items)
        np.testing.assert_array_equal(wa.labels, wb.labels)
        np.testing.assert_array_equal(wa.domains, wb.domains)
        np.testing.assert_array_equal(wa.times, wb.times)


def test_different_seed_gives_different_stream():
    a = EventStream(small_stream_config(seed=0)).window(0)
    b = EventStream(small_stream_config(seed=1)).window(0)
    assert not np.array_equal(a.labels, b.labels)


def test_windows_independent_of_generation_order():
    """window(i) is a pure function of its index — replays see the same
    stream no matter which windows were generated before."""
    fresh = EventStream(small_stream_config())
    sequential = EventStream(small_stream_config())
    for _ in sequential.windows():   # exhaust in order
        pass
    direct = fresh.window(3)         # cold, out of order
    replay = sequential.window(3)
    np.testing.assert_array_equal(direct.users, replay.users)
    np.testing.assert_array_equal(direct.labels, replay.labels)


def test_global_clock_and_watermarks(stream):
    previous_watermark = -1
    for window in stream.windows():
        assert window.start_time == window.index * len(window)
        assert np.all(np.diff(window.times) > 0)
        assert window.times[0] == window.start_time
        assert window.watermark == window.times[-1]
        assert window.start_time > previous_watermark
        previous_watermark = window.watermark


def test_rate_skew_makes_domain_zero_hottest(stream):
    counts = np.zeros(stream.config.n_domains)
    for window in stream.windows():
        counts += np.bincount(window.domains,
                              minlength=stream.config.n_domains)
    assert counts[0] == counts.max()
    assert counts[-1] == counts.min()
    assert counts.min() > 0


def test_drift_level_grows_and_caps():
    stream = EventStream(small_stream_config(drift_rate=0.4, max_drift=0.7,
                                             n_windows=4))
    levels = [stream.drift_level(i) for i in range(4)]
    assert levels[0] == 0.0
    assert levels[1] == pytest.approx(0.4)
    assert levels[2] == pytest.approx(0.7)   # capped
    assert levels[3] == pytest.approx(0.7)


def test_window_out_of_range_raises(stream):
    with pytest.raises(IndexError):
        stream.window(stream.config.n_windows)
    with pytest.raises(IndexError):
        stream.window(-1)


def test_per_domain_partitions_and_preserves_order(stream):
    window = stream.window(1)
    total = 0
    for domain, (table, times) in window.per_domain().items():
        mask = window.domains == domain
        np.testing.assert_array_equal(table.users, window.users[mask])
        np.testing.assert_array_equal(table.items, window.items[mask])
        np.testing.assert_array_equal(times, window.times[mask])
        assert np.all(np.diff(times) > 0)   # event order survives
        total += len(table)
    assert total == len(window)


def test_item_traffic_shifts_with_drift(stream):
    """Popularity drift: the impression distribution rotates with the
    preference structure, so the drift monitor has a covariate signal."""
    calm = stream.item_probs(0, 0.0)
    drifted = stream.item_probs(0, 0.9)
    assert calm.shape == drifted.shape
    assert np.abs(calm - drifted).max() > 0.01


def test_day0_positive_rate_near_target(stream):
    window = stream.window(0)
    assert abs(window.positive_rate() - stream.config.target_ctr) < 0.12


def test_skeleton_dataset_shape(stream, skeleton):
    assert skeleton.n_domains == stream.config.n_domains
    assert skeleton.n_users == stream.config.n_users
    assert skeleton.n_items == stream.config.n_items
    for domain in skeleton.domains:
        assert len(domain.train) == 0
        assert len(domain.val) == 0


def test_config_validation():
    with pytest.raises(ValueError):
        StreamConfig(n_domains=1)
    with pytest.raises(ValueError):
        StreamConfig(max_drift=1.0)
    with pytest.raises(ValueError):
        StreamConfig(target_ctr=0.0)
    with pytest.raises(ValueError):
        StreamConfig(n_domains=4, window_events=20)
