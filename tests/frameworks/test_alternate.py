"""Alternate / Alternate+Finetune / Separate specifics."""

from __future__ import annotations

import numpy as np

from repro.frameworks import Alternate, AlternateFinetune, Separate, StateBank
from repro.metrics import evaluate_bank
from repro.models import build_model
from repro.nn.state import state_allclose


def test_alternate_returns_single_model(tiny_dataset, fast_config):
    from repro.frameworks import SingleModelBank

    model = build_model("mlp", tiny_dataset, seed=0)
    bank = Alternate().fit(model, tiny_dataset, fast_config, seed=0)
    assert isinstance(bank, SingleModelBank)
    assert bank.model is model


def test_finetune_states_differ_from_base(tiny_dataset, fast_config):
    model = build_model("mlp", tiny_dataset, seed=0)
    bank = AlternateFinetune().fit(model, tiny_dataset, fast_config, seed=0)
    assert isinstance(bank, StateBank)
    assert set(bank.domain_states) == set(range(tiny_dataset.n_domains))
    # at least one domain actually specialized away from another
    states = [bank.state_for(d) for d in range(tiny_dataset.n_domains)]
    distinct = any(
        not state_allclose(states[0], s) for s in states[1:]
    )
    # (may legitimately be identical if selection kept the base everywhere,
    # but the bank must still serve every domain)
    assert len(states) == tiny_dataset.n_domains
    assert distinct or all(state_allclose(states[0], s) for s in states)


def test_separate_models_do_not_share_learning(tiny_dataset, fast_config):
    """Separate trains each domain from the same init: sparse domain 2's
    state must be independent of domain 0's data."""
    model = build_model("mlp", tiny_dataset, seed=0)
    bank = Separate().fit(model, tiny_dataset, fast_config, seed=0)

    # Retrain with domain 0's data replaced -> domain 2's state unchanged
    # (because per-domain training only reads its own domain).
    from repro.data import MultiDomainDataset, Domain

    domains = list(tiny_dataset.domains)
    shuffled0 = Domain(
        name=domains[0].name, index=0,
        train=domains[0].train.shuffled(np.random.default_rng(99)),
        val=domains[0].val, test=domains[0].test,
    )
    altered = MultiDomainDataset(
        tiny_dataset.name, [shuffled0] + domains[1:],
        tiny_dataset.n_users, tiny_dataset.n_items,
        user_features=tiny_dataset.user_features,
        item_features=tiny_dataset.item_features,
    )
    model2 = build_model("mlp", tiny_dataset, seed=0)
    bank2 = Separate().fit(model2, altered, fast_config, seed=0)
    assert state_allclose(bank.state_for(2), bank2.state_for(2))


def test_all_three_score_every_domain(tiny_dataset, fast_config):
    for framework in (Alternate(), AlternateFinetune(), Separate()):
        model = build_model("mlp", tiny_dataset, seed=0)
        bank = framework.fit(model, tiny_dataset, fast_config, seed=0)
        report = evaluate_bank(bank, tiny_dataset)
        assert len(report.per_domain) == tiny_dataset.n_domains
