"""Every learning framework: end-to-end fit on a tiny dataset.

Checks the universal contract — fit returns a bank scoring every domain,
training improves over the untrained model — plus framework-specific
behaviors.
"""

from __future__ import annotations

import pytest

from repro.frameworks import (
    available_frameworks,
    framework_by_name,
)
from repro.metrics import evaluate_bank
from repro.models import build_model

ALL_FRAMEWORKS = available_frameworks()


def test_registry_contains_paper_frameworks():
    expected = {"alternate", "alternate_finetune", "separate", "weighted_loss",
                "pcgrad", "maml", "reptile", "mldg", "dn", "dr", "mamdr"}
    assert expected == set(ALL_FRAMEWORKS)
    with pytest.raises(ValueError):
        framework_by_name("sgd_only")


@pytest.mark.parametrize("name", ALL_FRAMEWORKS)
def test_framework_trains_and_scores(name, tiny_dataset, fast_config):
    untrained = build_model("mlp", tiny_dataset, seed=2)
    base = evaluate_bank(
        __import__("repro.frameworks", fromlist=["SingleModelBank"]).SingleModelBank(untrained),
        tiny_dataset,
    ).mean_auc

    model = build_model("mlp", tiny_dataset, seed=2)
    framework = framework_by_name(name)
    bank = framework.fit(model, tiny_dataset, fast_config, seed=4)
    report = evaluate_bank(bank, tiny_dataset, method=name)
    assert len(report.per_domain) == tiny_dataset.n_domains
    for auc in report.per_domain.values():
        assert 0.0 <= auc <= 1.0
    # trained beats the untrained initialization
    assert report.mean_auc > base - 0.02


@pytest.mark.parametrize("name", ALL_FRAMEWORKS)
def test_framework_deterministic_under_seed(name, tiny_dataset, fast_config):
    reports = []
    for _ in range(2):
        model = build_model("mlp", tiny_dataset, seed=2)
        bank = framework_by_name(name).fit(model, tiny_dataset, fast_config, seed=4)
        reports.append(evaluate_bank(bank, tiny_dataset).per_domain)
    assert reports[0] == reports[1]


def test_multi_domain_model_with_framework(tiny_dataset, fast_config):
    """Frameworks are model agnostic: they must accept models with built-in
    domain-specific parameters too."""
    model = build_model("shared_bottom", tiny_dataset, seed=2)
    bank = framework_by_name("mamdr").fit(model, tiny_dataset, fast_config, seed=4)
    report = evaluate_bank(bank, tiny_dataset)
    assert len(report.per_domain) == tiny_dataset.n_domains
