"""DomainModelBank semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import sample_batch
from repro.frameworks import SingleModelBank, StateBank
from repro.models import build_model
from repro.nn.state import state_scale


def batch_for(dataset, domain=0):
    rng = np.random.default_rng(0)
    return sample_batch(dataset.domain(domain).train, domain, 12, rng)


def test_single_model_bank_scores(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    bank = SingleModelBank(model)
    scores = bank.scores(batch_for(tiny_dataset))
    assert scores.shape == (12,)
    assert ((scores >= 0) & (scores <= 1)).all()


def test_state_bank_swaps_states(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    base = model.state_dict()
    zeroed = state_scale(base, 0.0)
    bank = StateBank(model, {0: base, 1: zeroed})
    batch0 = batch_for(tiny_dataset, 0)
    scores0 = bank.scores(batch0)

    from repro.data import Batch

    batch_same_rows_domain1 = Batch(batch0.users, batch0.items,
                                    batch0.labels, domain=1)
    scores1 = bank.scores(batch_same_rows_domain1)
    # domain 1 uses zero weights: all logits 0 -> probability 0.5
    np.testing.assert_allclose(scores1, 0.5)
    assert not np.allclose(scores0, scores1)


def test_state_bank_default_state_fallback(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    base = model.state_dict()
    bank = StateBank(model, {0: base}, default_state=state_scale(base, 0.0))
    from repro.data import Batch

    batch = batch_for(tiny_dataset, 0)
    unseen = Batch(batch.users, batch.items, batch.labels, domain=2)
    np.testing.assert_allclose(bank.scores(unseen), 0.5)


def test_state_bank_missing_domain_raises(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    bank = StateBank(model, {0: model.state_dict()})
    with pytest.raises(KeyError):
        bank.state_for(5)


def test_state_bank_snapshots_are_copies(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    state = model.state_dict()
    bank = StateBank(model, {0: state})
    state[next(iter(state))][...] = 1e9
    stored = bank.state_for(0)
    assert not np.any(stored[next(iter(stored))] == 1e9)
