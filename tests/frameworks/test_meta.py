"""Meta-learning framework specifics: MAML splits, Reptile interpolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import InteractionTable
from repro.frameworks import MAML, Reptile, MLDG, support_query_split
from repro.metrics import evaluate_bank
from repro.models import build_model


def test_support_query_split_disjoint_exhaustive():
    table = InteractionTable(
        np.arange(20, dtype=np.int64),
        np.arange(20, dtype=np.int64),
        (np.arange(20) % 2).astype(float),
    )
    support, query = support_query_split(table, np.random.default_rng(0))
    assert len(support) + len(query) == 20
    assert set(support.users.tolist()).isdisjoint(set(query.users.tolist()))


def test_support_query_split_fraction():
    table = InteractionTable(
        np.arange(100, dtype=np.int64),
        np.arange(100, dtype=np.int64),
        np.ones(100),
    )
    support, query = support_query_split(table, np.random.default_rng(0),
                                         support_frac=0.25)
    assert len(support) == 25
    with pytest.raises(ValueError):
        support_query_split(table.subset(np.array([0])), np.random.default_rng(0))


def test_maml_returns_per_domain_states(tiny_dataset, fast_config):
    model = build_model("mlp", tiny_dataset, seed=1)
    bank = MAML(adapt_steps=1).fit(model, tiny_dataset, fast_config, seed=2)
    assert set(bank.domain_states) == set(range(tiny_dataset.n_domains))
    report = evaluate_bank(bank, tiny_dataset)
    assert 0.0 <= report.mean_auc <= 1.0


def test_reptile_moves_toward_adapted_state(tiny_dataset, fast_config):
    model = build_model("mlp", tiny_dataset, seed=1)
    init = model.state_dict()
    Reptile().fit(model, tiny_dataset, fast_config, seed=2)
    moved = sum(
        float(np.abs(model.state_dict()[k] - init[k]).sum()) for k in init
    )
    assert moved > 0.0


def test_mldg_needs_two_domains(fast_config):
    from tests.conftest import make_tiny_dataset

    single = make_tiny_dataset(n_domains=1)
    model = build_model("mlp", single, seed=1)
    with pytest.raises(ValueError):
        MLDG().fit(model, single, fast_config, seed=2)
