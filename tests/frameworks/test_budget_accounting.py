"""Complexity accounting: the O((k+1)n) claim, measured.

The paper contrasts MAMDR's O((k+1)n) per-epoch domain visits against
PCGrad's O(n^2) pairwise projections.  These tests count actual domain
visits / gradient computations, pinning the implementations to the claimed
complexity classes.
"""

from __future__ import annotations

import pytest

import repro.core.negotiation as negotiation
import repro.core.regularization as regularization
import repro.core.trainer as trainer
from repro.core import MAMDR, TrainConfig
from repro.models import build_model


@pytest.fixture()
def counters(monkeypatch):
    counts = {"train_steps": 0, "gradients": 0}

    original_train_steps = trainer.train_steps
    original_gradient = trainer.compute_loss_gradient

    def counting_train_steps(*args, **kwargs):
        counts["train_steps"] += 1
        return original_train_steps(*args, **kwargs)

    def counting_gradient(*args, **kwargs):
        counts["gradients"] += 1
        return original_gradient(*args, **kwargs)

    # Patch at the definition site and at the import sites used by DN/DR.
    monkeypatch.setattr(trainer, "train_steps", counting_train_steps)
    monkeypatch.setattr(negotiation, "train_steps", counting_train_steps)
    monkeypatch.setattr(regularization, "train_steps", counting_train_steps)
    monkeypatch.setattr(trainer, "compute_loss_gradient", counting_gradient)
    return counts


def test_mamdr_visits_are_linear_in_domains(tiny_dataset, counters):
    """One MAMDR epoch performs dn_rounds*n DN visits plus 2*k*n DR visits
    — O((k+1) n), never O(n^2)."""
    n = tiny_dataset.n_domains
    config = TrainConfig(epochs=1, inner_steps=1, dr_steps=1, sample_k=2,
                         dn_rounds=1)
    model = build_model("mlp", tiny_dataset, seed=0)
    MAMDR().fit(model, tiny_dataset, config, seed=0)
    expected = 1 * n + 2 * 2 * n  # DN visits + (helper+target) per k per domain
    assert counters["train_steps"] == expected


def test_dn_alone_is_linear(tiny_dataset, counters):
    from repro.core import DomainNegotiation

    n = tiny_dataset.n_domains
    config = TrainConfig(epochs=3, inner_steps=1, dn_rounds=1)
    model = build_model("mlp", tiny_dataset, seed=0)
    DomainNegotiation().fit(model, tiny_dataset, config, seed=0)
    assert counters["train_steps"] == 3 * n


def test_dr_visit_count_scales_with_k(tiny_dataset, counters):
    from repro.core import DomainParameterSpace, domain_regularization_round
    from repro.utils.seeding import spawn_rng

    model = build_model("mlp", tiny_dataset, seed=0)
    space = DomainParameterSpace(model, tiny_dataset.n_domains)
    rng = spawn_rng(0, "budget")
    for k in (1, 2):
        counters["train_steps"] = 0
        config = TrainConfig(epochs=1, dr_steps=1, sample_k=k)
        domain_regularization_round(model, tiny_dataset, space, 0, config, rng)
        assert counters["train_steps"] == 2 * k
