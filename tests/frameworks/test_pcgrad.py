"""PCGrad projection semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frameworks import project_conflicts


def as_state(vec):
    return {"w": np.asarray(vec, dtype=np.float64)}


def test_orthogonal_gradients_pass_through():
    rng = np.random.default_rng(0)
    g1 = as_state([1.0, 0.0])
    g2 = as_state([0.0, 1.0])
    combined = project_conflicts([g1, g2], rng)
    np.testing.assert_allclose(combined["w"], [1.0, 1.0])


def test_conflicting_gradients_are_projected():
    rng = np.random.default_rng(0)
    g1 = as_state([1.0, 0.0])
    g2 = as_state([-1.0, 1.0])
    combined = project_conflicts([g1, g2], rng)
    # After projection no pairwise negative component survives in the sum:
    # g1 projected onto normal of g2 and vice versa.
    g1p = np.array([1.0, 0.0]) - (np.dot([1, 0], [-1, 1]) / 2.0) * np.array([-1.0, 1.0])
    g2p = np.array([-1.0, 1.0]) - (np.dot([-1, 1], [1, 0]) / 1.0) * np.array([1.0, 0.0])
    np.testing.assert_allclose(combined["w"], g1p + g2p)


def test_projection_removes_negative_inner_products_pairwise():
    rng = np.random.default_rng(1)
    grads = [as_state(rng.normal(size=6)) for _ in range(4)]
    flats = [g["w"] for g in grads]
    combined = project_conflicts(grads, rng)
    # the combined direction is not worse than the naive sum against each
    # individual gradient
    naive = np.sum(flats, axis=0)
    for flat in flats:
        assert combined["w"] @ flat >= min(0.0, naive @ flat) - 1e-9


def test_identical_gradients_sum():
    rng = np.random.default_rng(0)
    g = as_state([1.0, 2.0])
    combined = project_conflicts([g, g, g], rng)
    np.testing.assert_allclose(combined["w"], [3.0, 6.0])


def test_zero_gradient_safe():
    rng = np.random.default_rng(0)
    combined = project_conflicts([as_state([0.0, 0.0]), as_state([1.0, 1.0])], rng)
    np.testing.assert_allclose(combined["w"], [1.0, 1.0])


def test_empty_rejected():
    with pytest.raises(ValueError):
        project_conflicts([], np.random.default_rng(0))


def test_multi_key_states_flatten_correctly():
    rng = np.random.default_rng(0)
    g1 = {"a": np.array([1.0]), "b": np.array([[0.0, 2.0]])}
    g2 = {"a": np.array([2.0]), "b": np.array([[1.0, -1.0]])}
    combined = project_conflicts([g1, g2], rng)
    assert combined["a"].shape == (1,)
    assert combined["b"].shape == (1, 2)
    # no conflict here (inner product positive): plain sum
    np.testing.assert_allclose(combined["a"], [3.0])
    np.testing.assert_allclose(combined["b"], [[1.0, 1.0]])
