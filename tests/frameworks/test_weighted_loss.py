"""Weighted Loss specifics: the uncertainty weights actually adapt."""

from __future__ import annotations

import numpy as np

from repro.frameworks import WeightedLoss
from repro.metrics import evaluate_bank
from repro.models import build_model


def test_weighted_loss_trains_and_scores(tiny_dataset, fast_config):
    model = build_model("mlp", tiny_dataset, seed=0)
    bank = WeightedLoss().fit(model, tiny_dataset, fast_config, seed=0)
    report = evaluate_bank(bank, tiny_dataset)
    assert len(report.per_domain) == tiny_dataset.n_domains


def test_log_variances_move_during_training(tiny_dataset, fast_config,
                                            monkeypatch):
    """The per-domain loss weights are learned, not static."""
    captured = {}

    import repro.frameworks.weighted_loss as wl

    original_parameter = wl.Parameter

    def capturing_parameter(data):
        param = original_parameter(data)
        captured.setdefault("log_vars", param)
        return param

    monkeypatch.setattr(wl, "Parameter", capturing_parameter)
    model = build_model("mlp", tiny_dataset, seed=0)
    config = fast_config.updated(epochs=3, inner_steps=6)
    WeightedLoss().fit(model, tiny_dataset, config, seed=0)

    log_vars = captured["log_vars"]
    assert log_vars.data.shape == (tiny_dataset.n_domains,)
    assert np.abs(log_vars.data).max() > 1e-6, "weights never adapted"
