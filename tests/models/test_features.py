"""Feature encoders: trainable vs fixed."""

from __future__ import annotations

import numpy as np

from repro.data import sample_batch
from repro.models import (
    FixedFeatureEncoder,
    TrainableEmbeddingEncoder,
    build_encoder,
)
from repro.nn import no_grad


def batch_for(dataset):
    rng = np.random.default_rng(0)
    d = dataset.domain(0)
    return sample_batch(d.train, 0, 8, rng)


def test_build_encoder_picks_by_dataset(tiny_dataset, tiny_fixed_dataset):
    rng = np.random.default_rng(0)
    assert isinstance(
        build_encoder(tiny_dataset, 8, rng), TrainableEmbeddingEncoder
    )
    assert isinstance(
        build_encoder(tiny_fixed_dataset, 8, rng), FixedFeatureEncoder
    )


def test_field_shapes(tiny_dataset, tiny_fixed_dataset):
    rng = np.random.default_rng(0)
    for dataset in (tiny_dataset, tiny_fixed_dataset):
        encoder = build_encoder(dataset, 8, rng)
        batch = batch_for(dataset)
        fields = encoder.fields(batch)
        assert len(fields) == encoder.n_fields == 2
        for field in fields:
            assert field.shape == (len(batch), 8)
        flat = encoder.concat(batch)
        assert flat.shape == (len(batch), encoder.flat_dim)
        assert encoder.flat_dim == 16


def test_trainable_encoder_embeddings_receive_grads(tiny_dataset):
    rng = np.random.default_rng(0)
    encoder = build_encoder(tiny_dataset, 8, rng)
    batch = batch_for(tiny_dataset)
    out = encoder.concat(batch)
    out.sum().backward()
    assert encoder.user_embedding.weight.grad is not None
    # only batch rows received gradient
    touched = np.unique(batch.users)
    grad = encoder.user_embedding.weight.grad
    untouched = np.setdiff1d(np.arange(grad.shape[0]), touched)
    assert np.abs(grad[untouched]).sum() == 0.0
    assert np.abs(grad[touched]).sum() > 0.0


def test_fixed_encoder_raw_features_frozen(tiny_fixed_dataset):
    rng = np.random.default_rng(0)
    encoder = build_encoder(tiny_fixed_dataset, 8, rng)
    param_names = [n for n, _ in encoder.named_parameters()]
    # only the projections are parameters; raw feature matrices are not
    assert sorted(param_names) == [
        "item_projection.bias", "item_projection.weight",
        "user_projection.bias", "user_projection.weight",
    ]


def test_same_ids_same_fields(tiny_dataset):
    rng = np.random.default_rng(0)
    encoder = build_encoder(tiny_dataset, 8, rng)
    batch = batch_for(tiny_dataset)
    with no_grad():
        a = encoder.concat(batch).data
        b = encoder.concat(batch).data
    np.testing.assert_array_equal(a, b)
