"""Architecture-specific behavior of each model in the zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import sample_batch
from repro.models import (
    bi_interaction,
    build_model,
)
from repro.models.autoint import InteractionAttention
from repro.nn import Tensor, no_grad
from repro.nn import functional as F


def batch_for(dataset, domain=0, size=10):
    rng = np.random.default_rng(1)
    return sample_batch(dataset.domain(domain).train, domain, size, rng)


def test_bi_interaction_matches_pairwise_sum():
    """0.5((Σv)² − Σv²) equals the sum over field pairs of elementwise
    products — the FM identity NeurFM/DeepFM rely on."""
    rng = np.random.default_rng(0)
    fields = [Tensor(rng.normal(size=(4, 6))) for _ in range(3)]
    pooled = bi_interaction(fields).data
    expected = np.zeros((4, 6))
    for i in range(3):
        for j in range(i + 1, 3):
            expected += fields[i].data * fields[j].data
    np.testing.assert_allclose(pooled, expected, atol=1e-12)


def test_deepfm_fm_term_present(tiny_dataset):
    """DeepFM differs from its deep part by the FM interaction: zeroing the
    linear + deep components leaves the pure FM logit."""
    model = build_model("deepfm", tiny_dataset, seed=0)
    model.eval()
    batch = batch_for(tiny_dataset)
    for name, param in model.named_parameters():
        if name.startswith(("linear.", "deep.")):
            param.data = np.zeros_like(param.data)
    with no_grad():
        logits = model(batch).data
        fields = model.encoder.fields(batch)
        fm = bi_interaction(fields).sum(axis=-1).data
    np.testing.assert_allclose(logits, fm, atol=1e-10)


def test_wdl_is_sum_of_wide_and_deep(tiny_dataset):
    model = build_model("wdl", tiny_dataset, seed=0)
    model.eval()
    batch = batch_for(tiny_dataset)
    with no_grad():
        full = model(batch).data.copy()
    for name, param in model.named_parameters():
        if name.startswith("wide."):
            param.data = np.zeros_like(param.data)
    with no_grad():
        deep_only = model(batch).data
    assert not np.allclose(full, deep_only)


def test_autoint_attention_shape_and_rowsums():
    rng = np.random.default_rng(0)
    layer = InteractionAttention(dim=8, num_heads=2, rng=rng)
    fields = Tensor(rng.normal(size=(3, 2, 8)))
    out = layer(fields)
    assert out.shape == (3, 2, 8)
    assert (out.data >= 0).all()  # relu output
    with pytest.raises(ValueError):
        InteractionAttention(dim=7, num_heads=2, rng=rng)


def test_autoint_stacking_layers(tiny_dataset):
    deep = build_model("autoint", tiny_dataset, seed=0, num_layers=2)
    batch = batch_for(tiny_dataset)
    assert deep(batch).shape == (len(batch),)
    assert len(list(deep.attention_layers)) == 2


def test_mmoe_gates_are_softmax(tiny_dataset):
    model = build_model("mmoe", tiny_dataset, seed=0)
    batch = batch_for(tiny_dataset)
    x = model.encoder.concat(batch)
    with no_grad():
        gate = F.softmax(model.gates[batch.domain](x), axis=-1).data
    np.testing.assert_allclose(gate.sum(axis=-1), 1.0)
    assert (gate >= 0).all()


def test_ple_has_more_extraction_layers_than_cgc(tiny_dataset):
    cgc = build_model("cgc", tiny_dataset, seed=0)
    ple = build_model("ple", tiny_dataset, seed=0)
    assert len(list(cgc.extraction_layers)) == 1
    assert len(list(ple.extraction_layers)) == 2


def test_star_initializes_to_shared_behavior(tiny_dataset):
    """STAR's domain factors start at one/zero, so at init every domain
    computes the same function up to PartitionedNorm and the prior."""
    model = build_model("star", tiny_dataset, seed=0)
    model.eval()
    batch0 = batch_for(tiny_dataset, 0)
    from repro.data import Batch

    batch1 = Batch(batch0.users, batch0.items, batch0.labels, domain=1)
    with no_grad():
        np.testing.assert_allclose(model(batch0).data, model(batch1).data)


def test_star_domain_prior_shifts_logits(tiny_dataset):
    model = build_model("star", tiny_dataset, seed=0)
    model.eval()
    batch = batch_for(tiny_dataset, 0)
    with no_grad():
        before = model(batch).data.copy()
    model.domain_prior.data = model.domain_prior.data + np.array([1.0, 0.0, 0.0])
    with no_grad():
        after = model(batch).data
    np.testing.assert_allclose(after, before + 1.0)


def test_mlp_depth_configurable(tiny_dataset):
    shallow = build_model("mlp", tiny_dataset, seed=0, hidden_dims=(8,))
    deep = build_model("mlp", tiny_dataset, seed=0, hidden_dims=(32, 16, 8))
    assert deep.num_parameters() > shallow.num_parameters()
    batch = batch_for(tiny_dataset)
    assert shallow(batch).shape == deep(batch).shape
