"""Model zoo: shapes, gradient flow, domain isolation, registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import sample_batch
from repro.models import MODEL_REGISTRY, build_model
from repro.nn import no_grad

ALL_MODELS = sorted(MODEL_REGISTRY)
MULTI_DOMAIN = [name for name, (_, flag) in MODEL_REGISTRY.items() if flag]


def batch_for(dataset, domain=0, size=16, seed=0):
    rng = np.random.default_rng(seed)
    d = dataset.domain(domain)
    return sample_batch(d.train, domain, size, rng)


@pytest.mark.parametrize("name", ALL_MODELS)
@pytest.mark.parametrize("fixture", ["tiny_dataset", "tiny_fixed_dataset"])
def test_forward_shape_and_loss(name, fixture, request):
    dataset = request.getfixturevalue(fixture)
    model = build_model(name, dataset, seed=3)
    batch = batch_for(dataset)
    logits = model(batch)
    assert logits.shape == (len(batch),)
    loss = model.loss(batch)
    assert np.isfinite(loss.item())
    probs = model.predict(batch)
    assert probs.shape == (len(batch),)
    assert ((probs >= 0) & (probs <= 1)).all()


@pytest.mark.parametrize("name", ALL_MODELS)
def test_gradients_reach_trained_components(name, tiny_dataset):
    model = build_model(name, tiny_dataset, seed=3)
    batch = batch_for(tiny_dataset)
    loss = model.loss(batch)
    model.zero_grad()
    loss.backward()
    grads = [p for p in model.parameters() if p.grad is not None]
    assert grads, "no gradients at all"
    total = sum(float(np.abs(p.grad).sum()) for p in grads)
    assert total > 0.0


@pytest.mark.parametrize("name", ["shared_bottom", "mmoe", "cgc", "ple"])
def test_domain_specific_components_isolated(name, tiny_dataset):
    """Training on domain 0 must not send gradient to domain 1's tower."""
    model = build_model(name, tiny_dataset, seed=3)
    batch = batch_for(tiny_dataset, domain=0)
    loss = model.loss(batch)
    model.zero_grad()
    loss.backward()
    grads = {
        pname: param.grad
        for pname, param in model.named_parameters()
        if param.grad is not None
    }
    tower_names = [n for n in grads if "towers.1" in n or "towers.2" in n]
    assert not tower_names, f"other domains' towers got grads: {tower_names}"
    assert any("towers.0" in n for n in grads)


def test_star_domain_slices_isolated(tiny_dataset):
    model = build_model("star", tiny_dataset, seed=3)
    batch = batch_for(tiny_dataset, domain=0)
    loss = model.loss(batch)
    model.zero_grad()
    loss.backward()
    for pname, param in model.named_parameters():
        if "weight_domain" in pname and param.grad is not None:
            assert np.abs(param.grad[0]).sum() > 0
            assert np.abs(param.grad[1]).sum() == 0


def test_multi_domain_models_distinguish_domains(tiny_dataset):
    """After perturbing one domain's tower, only that domain's scores move."""
    model = build_model("shared_bottom", tiny_dataset, seed=3)
    model.eval()  # freeze dropout so forwards are comparable
    batch0 = batch_for(tiny_dataset, domain=0)
    with no_grad():
        before = model(batch0).data.copy()
    for pname, param in model.named_parameters():
        if "towers.1" in pname:
            param.data = param.data + 1.0
    with no_grad():
        after = model(batch0).data
    np.testing.assert_allclose(before, after)


def test_single_domain_models_ignore_domain_id(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=3)
    model.eval()
    batch = batch_for(tiny_dataset, domain=0)
    from repro.data import Batch

    moved = Batch(batch.users, batch.items, batch.labels, domain=2)
    with no_grad():
        np.testing.assert_allclose(model(batch).data, model(moved).data)


def test_dropout_only_active_in_training(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=3, dropout_rate=0.5)
    batch = batch_for(tiny_dataset)
    model.eval()
    with no_grad():
        a = model(batch).data
        b = model(batch).data
    np.testing.assert_allclose(a, b)


def test_build_model_registry_errors(tiny_dataset):
    with pytest.raises(ValueError):
        build_model("transformer", tiny_dataset)


def test_build_model_deterministic(tiny_dataset):
    a = build_model("deepfm", tiny_dataset, seed=11)
    b = build_model("deepfm", tiny_dataset, seed=11)
    for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
        np.testing.assert_array_equal(pa.data, pb.data)
    c = build_model("deepfm", tiny_dataset, seed=12)
    params_c = list(c.parameters())
    assert any(
        not np.array_equal(pa.data, pc.data)
        for pa, pc in zip(a.parameters(), params_c)
    )


def test_raw_is_alias_for_mlp(tiny_dataset):
    from repro.models import MLP

    assert isinstance(build_model("raw", tiny_dataset), MLP)
