"""The public API surface stays intact.

Every name in every subpackage's ``__all__`` must actually exist — this is
the contract the README and examples are written against.
"""

from __future__ import annotations

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro",
    "repro.nn",
    "repro.data",
    "repro.models",
    "repro.frameworks",
    "repro.core",
    "repro.distributed",
    "repro.metrics",
    "repro.analysis",
    "repro.experiments",
    "repro.train",
    "repro.utils",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} has no __all__"
    for entry in module.__all__:
        assert hasattr(module, entry), f"{name}.{entry} missing"


def test_version_is_exposed():
    assert repro.__version__ == "1.0.0"


def test_quickstart_docstring_names_exist():
    """The import lines of the README quickstart must keep working."""
    from repro.core import MAMDR, TrainConfig  # noqa: F401
    from repro.data import amazon6_sim  # noqa: F401
    from repro.metrics import evaluate_bank  # noqa: F401
    from repro.models import build_model  # noqa: F401


def test_model_and_framework_registries_consistent():
    from repro.frameworks import available_frameworks, framework_by_name
    from repro.models import MODEL_REGISTRY

    for name in available_frameworks():
        assert framework_by_name(name) is not None
    assert {"mlp", "star", "mmoe", "ple"} <= set(MODEL_REGISTRY)
