"""Domain Regularization (Algorithm 2) semantics."""

from __future__ import annotations

import numpy as np

from repro.core import (
    DomainParameterSpace,
    domain_regularization_round,
    sample_helper_domains,
)
from repro.models import build_model
from repro.nn.state import state_allclose
from repro.utils.seeding import spawn_rng


def test_sample_helper_domains_excludes_target():
    rng = spawn_rng(0, "s")
    for _ in range(20):
        helpers = sample_helper_domains(rng, 6, target=2, k=3)
        assert len(helpers) == 3
        assert 2 not in helpers
        assert len(set(helpers)) == 3


def test_sample_helper_domains_edge_cases():
    rng = spawn_rng(0, "s")
    assert sample_helper_domains(rng, 5, 0, 0) == []
    assert sample_helper_domains(rng, 1, 0, 3) == []
    # k >= available: all others returned
    helpers = sample_helper_domains(rng, 3, 1, 10)
    assert sorted(helpers) == [0, 2]


def test_dr_round_updates_only_target_delta(tiny_dataset, fast_config):
    model = build_model("mlp", tiny_dataset, seed=0)
    space = DomainParameterSpace(model, tiny_dataset.n_domains)
    rng = spawn_rng(1, "dr")

    new_delta = domain_regularization_round(
        model, tiny_dataset, space, target=0, config=fast_config, rng=rng
    )
    moved = sum(float(np.abs(v).sum()) for v in new_delta.values())
    assert moved > 0.0
    # the space itself is not mutated by the round (caller commits)
    assert state_allclose(space.delta(0), {k: np.zeros_like(v) for k, v in new_delta.items()})


def test_dr_round_with_k_zero_is_identity(tiny_dataset, fast_config):
    model = build_model("mlp", tiny_dataset, seed=0)
    space = DomainParameterSpace(model, tiny_dataset.n_domains)
    config = fast_config.updated(sample_k=0)
    rng = spawn_rng(1, "dr")
    new_delta = domain_regularization_round(
        model, tiny_dataset, space, target=0, config=config, rng=rng
    )
    assert state_allclose(new_delta, space.delta(0))


def test_dr_gamma_scales_step(tiny_dataset, fast_config):
    model = build_model("mlp", tiny_dataset, seed=0)
    space = DomainParameterSpace(model, tiny_dataset.n_domains)

    def delta_norm(gamma):
        config = fast_config.updated(dr_lr=gamma, sample_k=1)
        rng = spawn_rng(5, "dr")
        new_delta = domain_regularization_round(
            model, tiny_dataset, space, target=1, config=config, rng=rng
        )
        return sum(float(np.abs(v).sum()) for v in new_delta.values())

    assert delta_norm(0.05) < delta_norm(0.5)


def test_dr_shared_untouched(tiny_dataset, fast_config):
    model = build_model("mlp", tiny_dataset, seed=0)
    space = DomainParameterSpace(model, tiny_dataset.n_domains)
    shared_before = {k: v.copy() for k, v in space.shared.items()}
    rng = spawn_rng(2, "dr")
    domain_regularization_round(
        model, tiny_dataset, space, target=0, config=fast_config, rng=rng
    )
    assert state_allclose(space.shared, shared_before)
