"""Domain clustering: seeded determinism, plan structure, feature probe."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import domain_features, identity_plan, kmeans, plan_clusters
from repro.core.param_space import ClusterPlan
from repro.models import build_model

from tests.conftest import make_tiny_dataset


@pytest.fixture(scope="module")
def dataset():
    return make_tiny_dataset("trainable", n_domains=8)


@pytest.fixture(scope="module")
def fixed_dataset():
    return make_tiny_dataset("fixed", n_domains=8)


def test_same_seed_same_plan(dataset):
    first = plan_clusters(dataset, n_clusters=3, seed=7)
    second = plan_clusters(dataset, n_clusters=3, seed=7)
    assert first == second
    assert first.assignments == second.assignments
    assert first.head_domains == second.head_domains


def test_plan_is_process_order_independent(dataset):
    """Cluster assignment must be a pure function of (dataset, seed) —
    building other plans in between (as different workers would) cannot
    perturb it."""
    baseline = plan_clusters(dataset, n_clusters=3, seed=7)
    plan_clusters(dataset, n_clusters=4, seed=99)   # unrelated draw
    plan_clusters(dataset, n_clusters=2, seed=1)
    again = plan_clusters(dataset, n_clusters=3, seed=7)
    assert again == baseline


def test_different_seeds_may_differ_but_stay_valid(dataset):
    for seed in range(4):
        plan = plan_clusters(dataset, n_clusters=3, seed=seed)
        assert plan.n_domains == dataset.n_domains
        assert set(plan.assignments) == set(range(plan.n_clusters))


def test_head_fraction_promotes_largest_domains(dataset):
    plan = plan_clusters(dataset, n_clusters=3, seed=0, head_fraction=0.25)
    assert len(plan.head_domains) == 2
    sizes = dataset.domain_sizes()
    floor = min(sizes[d] for d in plan.head_domains)
    tail = [d for d in range(dataset.n_domains) if d not in plan.head_domains]
    assert all(sizes[d] <= floor for d in tail)


def test_head_min_samples_filters_small_domains(dataset):
    sizes = dataset.domain_sizes()
    plan = plan_clusters(
        dataset, n_clusters=3, seed=0, head_fraction=1.0,
        head_min_samples=int(max(sizes)),
    )
    assert all(sizes[d] >= max(sizes) for d in plan.head_domains)


def test_gradient_probe_changes_features_not_determinism(dataset):
    model = build_model("mlp", dataset, seed=0)
    plain = domain_features(dataset, seed=3)
    probed = domain_features(dataset, model=model, seed=3)
    assert probed.shape[0] == plain.shape[0] == dataset.n_domains
    assert probed.shape[1] > plain.shape[1]
    again = domain_features(dataset, model=model, seed=3)
    np.testing.assert_array_equal(probed, again)


def test_fixed_features_extend_descriptor(fixed_dataset):
    features = domain_features(fixed_dataset)
    plain_width = domain_features(make_tiny_dataset("trainable", 8)).shape[1]
    assert features.shape[1] == \
        plain_width + fixed_dataset.item_features.shape[1]


def test_kmeans_deterministic_and_total():
    from repro.utils.seeding import spawn_rng

    features = spawn_rng(0, "test", "kmeans").standard_normal((40, 5))
    first = kmeans(features, 6, seed=11)
    second = kmeans(features, 6, seed=11)
    np.testing.assert_array_equal(first, second)
    assert first.shape == (40,)
    assert set(first) <= set(range(6))


def test_kmeans_degenerate_cases():
    features = np.zeros((5, 3))
    np.testing.assert_array_equal(kmeans(features, 5, seed=0), np.arange(5))
    with pytest.raises(ValueError):
        kmeans(features, 0, seed=0)


def test_identity_plan_matches_classmethod():
    plan = identity_plan(4)
    assert plan == ClusterPlan.identity(4)
    assert plan.assignments == (0, 1, 2, 3)
    assert plan.head_domains == frozenset()
    assert [plan.members(c) for c in range(4)] == [(0,), (1,), (2,), (3,)]


def test_cluster_plan_validation():
    with pytest.raises(ValueError):
        ClusterPlan(assignments=(), n_clusters=1)
    with pytest.raises(ValueError):
        ClusterPlan(assignments=(0, 1), n_clusters=0)
    with pytest.raises(ValueError):
        ClusterPlan(assignments=(0, 2), n_clusters=2)   # id out of range
    with pytest.raises(ValueError):
        ClusterPlan(assignments=(0, 0), n_clusters=1, head_domains={5})
    plan = ClusterPlan(assignments=(0, 1, 0), n_clusters=2, head_domains={2})
    assert plan.cluster_of(2) == 0
    assert plan.members(0) == (0, 2)
    assert plan.summary()["tail_domains"] == 2
