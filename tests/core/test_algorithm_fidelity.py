"""Regression tests pinning the implementations to the paper's algorithms.

These tests monkeypatch the low-level training step to record the *order*
of domain visits — the property the paper's analysis hinges on:

* Algorithm 1 (DN): every domain visited exactly once per inner loop;
* Algorithm 2 (DR): the helper domain is always trained *before* the
  target domain, and the target concludes every pair (fixed order — this
  asymmetry is what turns the Hessian term into a regularizer, Eq. 22).
"""

from __future__ import annotations

import pytest

import repro.core.negotiation as negotiation
import repro.core.regularization as regularization
from repro.core import (
    DomainParameterSpace,
    TrainConfig,
    domain_negotiation_epoch,
    domain_regularization_round,
)
from repro.models import build_model
from repro.utils.seeding import spawn_rng


@pytest.fixture()
def visit_log(monkeypatch):
    """Record (module, domain) for every train_steps call."""
    log = []

    def recording_train_steps(model, table, domain, optimizer, rng,
                              batch_size, max_steps):
        log.append(domain)
        return 0.0

    monkeypatch.setattr(negotiation, "train_steps", recording_train_steps)
    monkeypatch.setattr(regularization, "train_steps", recording_train_steps)
    return log


def test_dn_visits_every_domain_once_per_epoch(tiny_dataset, visit_log):
    model = build_model("mlp", tiny_dataset, seed=0)
    config = TrainConfig(epochs=1, inner_steps=1)
    rng = spawn_rng(0, "fidelity")
    domain_negotiation_epoch(model, tiny_dataset, model.state_dict(),
                             config, rng)
    assert sorted(visit_log) == list(range(tiny_dataset.n_domains))


def test_dr_helper_always_precedes_target(tiny_dataset, visit_log):
    model = build_model("mlp", tiny_dataset, seed=0)
    space = DomainParameterSpace(model, tiny_dataset.n_domains)
    config = TrainConfig(epochs=1, sample_k=2, dr_steps=1)
    rng = spawn_rng(1, "fidelity")
    target = 0
    domain_regularization_round(model, tiny_dataset, space, target,
                                config, rng)
    # visits come in (helper, target) pairs
    assert len(visit_log) % 2 == 0
    pairs = list(zip(visit_log[0::2], visit_log[1::2]))
    for helper, tgt in pairs:
        assert tgt == target
        assert helper != target


def test_dr_samples_k_distinct_helpers(tiny_dataset, visit_log):
    model = build_model("mlp", tiny_dataset, seed=0)
    space = DomainParameterSpace(model, tiny_dataset.n_domains)
    config = TrainConfig(epochs=1, sample_k=2, dr_steps=1)
    rng = spawn_rng(2, "fidelity")
    domain_regularization_round(model, tiny_dataset, space, 1, config, rng)
    helpers = visit_log[0::2]
    assert len(helpers) == 2
    assert len(set(helpers)) == 2


def test_dn_reshuffles_between_epochs(tiny_dataset, visit_log):
    model = build_model("mlp", tiny_dataset, seed=0)
    config = TrainConfig(epochs=1, inner_steps=1)
    rng = spawn_rng(3, "fidelity")
    shared = model.state_dict()
    orders = []
    for _ in range(8):
        visit_log.clear()
        shared = domain_negotiation_epoch(model, tiny_dataset, shared,
                                          config, rng)
        orders.append(tuple(visit_log))
    assert len(set(orders)) > 1, "domain order never reshuffled"
