"""Domain Negotiation (Algorithm 1) semantics."""

from __future__ import annotations

import numpy as np

from repro.core import domain_negotiation_epoch
from repro.core.trainer import make_inner_optimizer, train_steps
from repro.models import build_model
from repro.nn.state import state_allclose, state_interpolate, state_sub
from repro.utils.seeding import spawn_rng


def test_outer_update_is_interpolation(tiny_dataset, fast_config):
    """Θ_new = Θ + β (Θ~ − Θ): with β=0.5 the new state is halfway between
    the old state and the inner trajectory's endpoint."""
    model = build_model("mlp", tiny_dataset, seed=0)
    shared = model.state_dict()
    config = fast_config.updated(outer_lr=0.5)
    rng = spawn_rng(0, "t")
    new_shared = domain_negotiation_epoch(model, tiny_dataset, shared, config, rng)
    inner_end = model.state_dict()  # model is left at the trajectory end
    expected = state_interpolate(shared, inner_end, 0.5)
    assert state_allclose(new_shared, expected, atol=1e-10)
    # and the update actually moved the parameters
    moved = state_sub(new_shared, shared)
    assert sum(float(np.abs(v).sum()) for v in moved.values()) > 0


def test_beta_one_degenerates_to_alternate_training(tiny_dataset, fast_config):
    """Section IV-A: with β = 1 DN *is* Alternate Training — the outer state
    equals the sequential inner trajectory exactly."""
    config = fast_config.updated(outer_lr=1.0)

    model_dn = build_model("mlp", tiny_dataset, seed=0)
    shared = model_dn.state_dict()
    rng_dn = spawn_rng(7, "order")
    optimizer_dn = make_inner_optimizer(model_dn, config)
    dn_state = domain_negotiation_epoch(
        model_dn, tiny_dataset, shared, config, rng_dn, optimizer=optimizer_dn
    )

    # Manual alternate training with the same rng stream -> same domain
    # order and same batches.
    model_alt = build_model("mlp", tiny_dataset, seed=0)
    rng_alt = spawn_rng(7, "order")
    optimizer_alt = make_inner_optimizer(model_alt, config)
    order = list(range(tiny_dataset.n_domains))
    rng_alt.shuffle(order)
    for domain_index in order:
        domain = tiny_dataset.domain(domain_index)
        train_steps(model_alt, domain.train, domain_index, optimizer_alt,
                    rng_alt, config.batch_size, config.inner_steps)

    assert state_allclose(dn_state, model_alt.state_dict(), atol=1e-12)


def test_smaller_beta_moves_less(tiny_dataset, fast_config):
    model = build_model("mlp", tiny_dataset, seed=0)
    shared = model.state_dict()

    def movement(beta):
        m = build_model("mlp", tiny_dataset, seed=0)
        new = domain_negotiation_epoch(
            m, tiny_dataset, shared, fast_config.updated(outer_lr=beta),
            spawn_rng(3, "m"),
        )
        return sum(float(np.abs(v).sum())
                   for v in state_sub(new, shared).values())

    assert movement(0.1) < movement(0.5) < movement(1.0)


def test_domain_order_reshuffled_across_epochs(tiny_dataset, fast_config):
    """The inner-loop order must change between epochs — the symmetry that
    makes InnerGrad (Eq. 19-21) an expectation over pairs."""
    model = build_model("mlp", tiny_dataset, seed=0)
    rng = spawn_rng(11, "shuffle")
    orders = []
    for _ in range(6):
        order = list(range(tiny_dataset.n_domains))
        rng.shuffle(order)
        orders.append(tuple(order))
    assert len(set(orders)) > 1
