"""New-domain onboarding (the Figure 2 platform story)."""

from __future__ import annotations

import pytest

from repro.core import MAMDR, extend_bank, onboard_domain
from repro.core.selection import domain_split_auc
from repro.frameworks import StateBank
from repro.models import build_model
from repro.nn.state import state_allclose
from tests.conftest import make_tiny_dataset


@pytest.fixture(scope="module")
def grown_dataset():
    """Four domains; we treat domain 3 as the one being onboarded."""
    return make_tiny_dataset(n_domains=4, seed=8, samples=(250, 200, 150, 120))


def test_onboard_returns_best_val_state(grown_dataset, fast_config):
    model = build_model("mlp", grown_dataset, seed=0)
    shared = model.state_dict()
    combined = onboard_domain(model, grown_dataset, shared, 3,
                              config=fast_config, seed=1)
    new_domain = grown_dataset.domain(3)
    model.load_state_dict(combined)
    onboarded_auc = domain_split_auc(model, new_domain)
    model.load_state_dict(shared)
    shared_auc = domain_split_auc(model, new_domain)
    # selection guarantees the onboarded state is never worse on val
    assert onboarded_auc >= shared_auc


def test_onboarding_leaves_existing_domains_untouched(grown_dataset,
                                                      fast_config):
    model = build_model("mlp", grown_dataset, seed=0)
    bank = MAMDR().fit(model, grown_dataset, fast_config, seed=0)
    before = {d: bank.state_for(d) for d in range(3)}

    extended = extend_bank(bank, model, grown_dataset, 3,
                           config=fast_config, seed=2)
    assert isinstance(extended, StateBank)
    for d in range(3):
        assert state_allclose(extended.state_for(d), before[d])
    assert 3 in extended.domain_states


def test_extend_bank_requires_default_state(grown_dataset, fast_config):
    model = build_model("mlp", grown_dataset, seed=0)
    bank = StateBank(model, {0: model.state_dict()})
    with pytest.raises(ValueError):
        extend_bank(bank, model, grown_dataset, 3, config=fast_config)
