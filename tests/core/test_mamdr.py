"""MAMDR (Algorithm 3): the unified framework and its ablations."""

from __future__ import annotations


from repro.core import MAMDR
from repro.frameworks import StateBank
from repro.metrics import evaluate_bank
from repro.models import build_model
from repro.nn.state import state_allclose


def test_names_reflect_ablation():
    assert MAMDR().name == "MAMDR (DN+DR)"
    assert MAMDR(use_dr=False).name == "DN"
    assert MAMDR(use_dn=False).name == "DR"
    assert MAMDR(use_dn=False, use_dr=False).name == "Alternate"


def test_fit_returns_state_bank_with_all_domains(tiny_dataset, fast_config):
    model = build_model("mlp", tiny_dataset, seed=1)
    bank = MAMDR().fit(model, tiny_dataset, fast_config, seed=3)
    assert isinstance(bank, StateBank)
    assert set(bank.domain_states) == set(range(tiny_dataset.n_domains))


def test_without_dr_all_domains_share_state(tiny_dataset, fast_config):
    model = build_model("mlp", tiny_dataset, seed=1)
    bank = MAMDR(use_dr=False).fit(model, tiny_dataset, fast_config, seed=3)
    states = [bank.state_for(d) for d in range(tiny_dataset.n_domains)]
    for state in states[1:]:
        assert state_allclose(states[0], state)


def test_with_dr_domains_get_distinct_states(tiny_dataset, fast_config):
    model = build_model("mlp", tiny_dataset, seed=1)
    bank = MAMDR().fit(model, tiny_dataset, fast_config, seed=3)
    s0 = bank.state_for(0)
    s1 = bank.state_for(1)
    assert not state_allclose(s0, s1)


def test_mamdr_improves_over_initialization(tiny_dataset, fast_config):
    from repro.frameworks import SingleModelBank

    untrained = build_model("mlp", tiny_dataset, seed=1)
    base = evaluate_bank(SingleModelBank(untrained), tiny_dataset).mean_auc

    model = build_model("mlp", tiny_dataset, seed=1)
    config = fast_config.updated(epochs=4, inner_steps=None)
    bank = MAMDR().fit(model, tiny_dataset, config, seed=3)
    trained = evaluate_bank(bank, tiny_dataset).mean_auc
    assert trained > base + 0.05


def test_mamdr_works_on_fixed_feature_dataset(tiny_fixed_dataset, fast_config):
    model = build_model("mlp", tiny_fixed_dataset, seed=1)
    bank = MAMDR().fit(model, tiny_fixed_dataset, fast_config, seed=3)
    report = evaluate_bank(bank, tiny_fixed_dataset)
    assert 0.0 <= report.mean_auc <= 1.0
