"""DomainParamStore backends: clustered semantics + dense parity.

The acceptance bar for the storage redesign: the dense backend is
bitwise-identical to the historical per-domain dict, and the clustered
backend under an *identity* plan (every domain its own cluster, no
heads) reproduces the dense arithmetic exactly — same trained states,
same AUC to 1e-9.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MAMDR,
    ClusteredDomainStore,
    ClusterPlan,
    DenseDomainStore,
    DomainGroup,
    DomainParameterSpace,
    identity_plan,
    plan_clusters,
)
from repro.metrics import evaluate_bank
from repro.models import build_model
from repro.nn.state import (
    clone_state,
    state_allclose,
    state_scale,
    zeros_like_state,
)

from tests.conftest import make_tiny_dataset


@pytest.fixture(scope="module")
def dataset():
    return make_tiny_dataset("trainable", n_domains=4)


def clustered_space(model, plan):
    return DomainParameterSpace(
        model, plan.n_domains,
        store=lambda shared: ClusteredDomainStore(shared, plan),
    )


# ----------------------------------------------------------------------
# DomainGroup / store structure
# ----------------------------------------------------------------------
def test_domain_group_validation():
    with pytest.raises(ValueError):
        DomainGroup(kind="blob", key="x", domains=(0,), representative=0)
    with pytest.raises(ValueError):
        DomainGroup(kind="cluster", key="x", domains=(), representative=0)
    with pytest.raises(ValueError):
        DomainGroup(kind="cluster", key="x", domains=(1, 2), representative=0)


def test_dense_store_groups_are_singletons_in_order(dataset):
    model = build_model("mlp", dataset, seed=0)
    store = DenseDomainStore(model.state_dict(), 4)
    groups = store.groups()
    assert [g.domains for g in groups] == [(0,), (1,), (2,), (3,)]
    assert all(g.kind == "domain" for g in groups)


def test_clustered_store_groups_tail_then_heads(dataset):
    model = build_model("mlp", dataset, seed=0)
    plan = ClusterPlan(
        assignments=(0, 0, 1, 1), n_clusters=2, head_domains={1},
    )
    store = ClusteredDomainStore(model.state_dict(), plan)
    groups = store.groups()
    # cluster-tail groups first (sorted by cluster), then head singletons
    assert [(g.kind, g.domains) for g in groups] == [
        ("cluster", (0,)), ("cluster", (2, 3)), ("domain", (1,)),
    ]
    assert groups[1].representative == 2


def test_clustered_store_requires_plan(dataset):
    model = build_model("mlp", dataset, seed=0)
    with pytest.raises(TypeError):
        ClusteredDomainStore(model.state_dict(), [0, 0, 1, 1])


# ----------------------------------------------------------------------
# Delta semantics: cluster row + head residual
# ----------------------------------------------------------------------
def test_tail_domains_share_cluster_delta(dataset):
    model = build_model("mlp", dataset, seed=0)
    plan = ClusterPlan(assignments=(0, 0, 1, 1), n_clusters=2)
    space = clustered_space(model, plan)
    cluster_group = space.groups()[0]
    delta = state_scale(space.shared, 0.5)
    space.apply_delta(cluster_group, delta)
    # every member of cluster 0 sees the same effective delta ...
    assert state_allclose(space.delta(0), delta)
    assert state_allclose(space.delta(1), delta)
    # ... and the other cluster is untouched
    assert all(np.all(v == 0.0) for v in space.delta(2).values())


def test_head_domain_keeps_residual_on_top_of_cluster(dataset):
    model = build_model("mlp", dataset, seed=0)
    plan = ClusterPlan(
        assignments=(0, 0, 0, 0), n_clusters=1, head_domains={3},
    )
    space = clustered_space(model, plan)
    cluster_group, head_group = space.groups()
    cluster_delta = state_scale(space.shared, 0.5)
    space.apply_delta(cluster_group, cluster_delta)
    head_delta = state_scale(space.shared, 0.8)
    space.apply_delta(head_group, head_delta)
    # the head's *effective* delta is exactly what was applied ...
    assert state_allclose(space.delta(3), head_delta, atol=1e-12)
    # ... stored internally as a residual against the cluster row, so a
    # later cluster update shifts the head by the same amount
    space.apply_delta(cluster_group, state_scale(space.shared, 0.6))
    assert state_allclose(
        space.delta(3), state_scale(space.shared, 0.9), atol=1e-12
    )
    assert state_allclose(
        space.materialize(3), state_scale(space.shared, 1.9), atol=1e-12
    )


def test_apply_delta_to_shared_tail_member_is_rejected(dataset):
    model = build_model("mlp", dataset, seed=0)
    plan = ClusterPlan(assignments=(0, 0, 1, 1), n_clusters=2)
    space = clustered_space(model, plan)
    with pytest.raises(ValueError, match="tail member"):
        space.set_delta(1, zeros_like_state(space.shared))
    # a sole tail member IS addressable by index (it owns the row)
    solo = ClusterPlan(
        assignments=(0, 0, 0, 1), n_clusters=2, head_domains=frozenset(),
    )
    solo_space = clustered_space(build_model("mlp", dataset, seed=0), solo)
    solo_space.set_delta(3, state_scale(solo_space.shared, 0.25))
    assert state_allclose(
        solo_space.delta(3), state_scale(solo_space.shared, 0.25)
    )


def test_unknown_domain_rejected_by_clustered_store(dataset):
    model = build_model("mlp", dataset, seed=0)
    space = clustered_space(model, identity_plan(4))
    with pytest.raises(KeyError):
        space.delta(9)


# ----------------------------------------------------------------------
# COW materialization and accounting
# ----------------------------------------------------------------------
def test_cow_states_yield_one_state_per_group(dataset):
    model = build_model("mlp", dataset, seed=0)
    plan = ClusterPlan(
        assignments=(0, 0, 1, 1), n_clusters=2, head_domains={0},
    )
    space = clustered_space(model, plan)
    entries = list(space.cow_states(space.shared))
    assert [domains for domains, _ in entries] == [(1,), (2, 3), (0,)]
    # all-zero deltas: every entry aliases the shared arrays
    for _, state in entries:
        assert all(v is space.shared[n] for n, v in state.items())


def test_clustered_nbytes_scales_with_groups_not_domains(dataset):
    model = build_model("mlp", dataset, seed=0)
    dense = DenseDomainStore(model.state_dict(), 4)
    two = ClusteredDomainStore(
        model.state_dict(),
        ClusterPlan(assignments=(0, 0, 1, 1), n_clusters=2),
    )
    assert two.nbytes() == dense.nbytes() / 2
    stats = two.stats()
    assert stats["backend"] == "ClusteredDomainStore"
    assert stats["populated_clusters"] == 2


def test_space_rejects_mismatched_store(dataset):
    model = build_model("mlp", dataset, seed=0)
    with pytest.raises(ValueError, match="store covers"):
        DomainParameterSpace(
            model, 4,
            store=lambda shared: ClusteredDomainStore(
                shared, identity_plan(3)
            ),
        )


def test_deltas_shim_warns_and_materializes(dataset):
    model = build_model("mlp", dataset, seed=0)
    space = DomainParameterSpace(model, 4)
    with pytest.warns(DeprecationWarning, match="DomainParamStore"):
        deltas = space.deltas
    assert set(deltas) == {0, 1, 2, 3}


# ----------------------------------------------------------------------
# Backend parity: identity-plan clustered == dense, bit for bit
# ----------------------------------------------------------------------
def test_identity_plan_training_is_bitwise_dense(dataset, fast_config):
    dense_model = build_model("mlp", dataset, seed=1)
    dense_bank = MAMDR().fit(dense_model, dataset, fast_config, seed=3)

    clustered_model = build_model("mlp", dataset, seed=1)
    store = lambda shared: ClusteredDomainStore(  # noqa: E731
        shared, identity_plan(dataset.n_domains)
    )
    clustered_bank = MAMDR(store=store).fit(
        clustered_model, dataset, fast_config, seed=3
    )

    for domain in range(dataset.n_domains):
        lhs = dense_bank.state_for(domain)
        rhs = clustered_bank.state_for(domain)
        for name in lhs:
            np.testing.assert_array_equal(lhs[name], rhs[name])

    dense_auc = evaluate_bank(dense_bank, dataset).mean_auc
    clustered_auc = evaluate_bank(clustered_bank, dataset).mean_auc
    assert abs(dense_auc - clustered_auc) < 1e-9


def test_real_plan_training_runs_and_evaluates(dataset, fast_config):
    """A genuinely merged plan trains end-to-end and serves every domain."""
    model = build_model("mlp", dataset, seed=1)
    plan = plan_clusters(dataset, n_clusters=2, seed=0, head_fraction=0.25)
    bank = MAMDR(
        store=lambda shared: ClusteredDomainStore(shared, plan)
    ).fit(model, dataset, fast_config, seed=3)
    assert set(bank.domain_states) == set(range(dataset.n_domains))
    report = evaluate_bank(bank, dataset)
    assert 0.0 <= report.mean_auc <= 1.0


def test_training_plan_merges_cluster_view(dataset):
    model = build_model("mlp", dataset, seed=0)
    plan = ClusterPlan(assignments=(0, 0, 1, 1), n_clusters=2)
    space = clustered_space(model, plan)
    view, groups = space.training_plan(dataset)
    assert view.n_domains == len(groups) == 2
    assert view.name.endswith("#groups")
    for index, group in enumerate(groups):
        merged = view.domain(index).train
        assert len(merged) == sum(
            len(dataset.domain(d).train) for d in group.domains
        )
    # dense spaces return the dataset untouched
    dense_space = DomainParameterSpace(model, dataset.n_domains)
    view, groups = dense_space.training_plan(dataset)
    assert view is dataset
    assert len(groups) == dataset.n_domains


def test_all_combined_shares_state_within_group(dataset):
    model = build_model("mlp", dataset, seed=0)
    plan = ClusterPlan(assignments=(0, 0, 1, 1), n_clusters=2)
    space = clustered_space(model, plan)
    space.apply_delta(space.groups()[0], state_scale(space.shared, 0.5))
    combined = space.all_combined()
    assert combined[0] is combined[1]
    assert combined[2] is combined[3]
    assert combined[0] is not combined[2]
    assert state_allclose(combined[0], state_scale(space.shared, 1.5))


def test_get_is_materialize_alias(dataset):
    model = build_model("mlp", dataset, seed=0)
    space = DomainParameterSpace(model, 4)
    delta = state_scale(space.shared, 0.25)
    space.set_delta(2, delta)
    assert state_allclose(space.get(2), space.materialize(2))
    assert state_allclose(space.get(2), state_scale(space.shared, 1.25))


def test_materialize_does_not_leak_internal_views(dataset):
    """Mutating a materialized state must not corrupt the store."""
    model = build_model("mlp", dataset, seed=0)
    space = clustered_space(model, identity_plan(4))
    state = space.materialize(0)
    before = clone_state(space.delta(0))
    for value in state.values():
        value += 123.0
    assert state_allclose(space.delta(0), before)
