"""DomainParameterSpace: the Θ = θ_S + θ_i composition (Eq. 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DomainParameterSpace
from repro.models import build_model
from repro.nn.state import state_allclose, state_scale


def test_initial_deltas_are_zero(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    space = DomainParameterSpace(model, 3)
    for domain in range(3):
        combined = space.combined(domain)
        assert state_allclose(combined, space.shared)


def test_combined_is_sum(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    space = DomainParameterSpace(model, 2)
    delta = state_scale(space.shared, 0.5)
    space.set_delta(1, delta)
    combined = space.combined(1)
    expected = state_scale(space.shared, 1.5)
    assert state_allclose(combined, expected)
    # domain 0 unaffected
    assert state_allclose(space.combined(0), space.shared)


def test_load_and_extract_round_trip(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    space = DomainParameterSpace(model, 2)
    delta = state_scale(space.shared, 0.1)
    space.set_delta(0, delta)
    space.load_combined(model, 0)
    extracted = space.extract_delta(model)
    assert state_allclose(extracted, delta, atol=1e-12)

    space.load_shared(model)
    zero = space.extract_delta(model)
    assert all(np.abs(v).max() < 1e-12 for v in zero.values())


def test_set_shared_does_not_alias(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    space = DomainParameterSpace(model, 1)
    state = model.state_dict()
    space.set_shared(state)
    key = next(iter(state))
    state[key][...] = 777.0
    assert not np.any(space.shared[key] == 777.0)


def test_unknown_domain_rejected(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    space = DomainParameterSpace(model, 2)
    with pytest.raises(KeyError):
        space.delta(5)
    with pytest.raises(ValueError):
        DomainParameterSpace(model, 0)


def test_all_combined_covers_every_domain(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    space = DomainParameterSpace(model, 4)
    combined = space.all_combined()
    assert set(combined) == {0, 1, 2, 3}
