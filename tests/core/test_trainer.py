"""Low-level training helpers."""

from __future__ import annotations

import numpy as np

from repro.core import TrainConfig, compute_loss_gradient, train_steps
from repro.core.trainer import make_inner_optimizer
from repro.data import sample_batch
from repro.models import build_model
from repro.nn import Adam, SGD


def test_train_steps_returns_mean_loss(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    config = TrainConfig()
    optimizer = make_inner_optimizer(model, config)
    domain = tiny_dataset.domain(0)
    rng = np.random.default_rng(0)
    loss = train_steps(model, domain.train, 0, optimizer, rng, 32, 3)
    assert 0.0 < loss < 10.0


def test_train_steps_respects_max_steps(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    config = TrainConfig()
    optimizer = make_inner_optimizer(model, config)
    domain = tiny_dataset.domain(0)
    rng = np.random.default_rng(0)
    state_before = model.state_dict()
    train_steps(model, domain.train, 0, optimizer, rng, 32, 0)
    # zero steps -> no movement
    for name, value in model.state_dict().items():
        np.testing.assert_array_equal(value, state_before[name])


def test_make_inner_optimizer_respects_config(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    adam = make_inner_optimizer(model, TrainConfig(inner_optimizer="adam"))
    assert isinstance(adam, Adam)
    sgd = make_inner_optimizer(
        model, TrainConfig(inner_optimizer="sgd", inner_lr=0.3)
    )
    assert isinstance(sgd, SGD)
    assert sgd.lr == 0.3


def test_compute_loss_gradient_matches_manual_backward(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    model.eval()  # disable dropout so both passes are identical
    rng = np.random.default_rng(0)
    batch = sample_batch(tiny_dataset.domain(0).train, 0, 16, rng)
    loss_value, grads = compute_loss_gradient(model, batch)

    loss = model.loss(batch)
    model.zero_grad()
    loss.backward()
    assert loss.item() == loss_value
    for name, param in model.named_parameters():
        if param.grad is not None:
            np.testing.assert_allclose(grads[name], param.grad)


def test_compute_loss_gradient_returns_copies(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    rng = np.random.default_rng(0)
    batch = sample_batch(tiny_dataset.domain(0).train, 0, 16, rng)
    _, grads = compute_loss_gradient(model, batch)
    name = next(iter(grads))
    grads[name][...] = 1e9
    _, fresh = compute_loss_gradient(model, batch)
    assert not np.any(fresh[name] == 1e9)
