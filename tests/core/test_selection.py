"""Validation-based model selection utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DomainParameterSpace
from repro.core.selection import (
    BestTracker,
    PerDomainTracker,
    domain_split_auc,
    finetune_with_selection,
    model_split_auc,
    space_split_auc,
)
from repro.core.trainer import make_inner_optimizer
from repro.models import build_model
from repro.nn.state import state_allclose, state_scale


def test_best_tracker_keeps_maximum():
    tracker = BestTracker()
    assert not tracker.has_best
    assert tracker.update(0.5, {"w": np.array([1.0])})
    assert not tracker.update(0.4, {"w": np.array([2.0])})
    assert tracker.update(0.6, {"w": np.array([3.0])})
    np.testing.assert_allclose(tracker.best["w"], [3.0])
    assert tracker.best_score == 0.6


def test_best_tracker_snapshots_are_copies():
    tracker = BestTracker()
    state = {"w": np.array([1.0])}
    tracker.update(1.0, state)
    state["w"][0] = -5.0
    np.testing.assert_allclose(tracker.best["w"], [1.0])


def test_best_tracker_nested_snapshot():
    tracker = BestTracker()
    nested = ({"w": np.ones(2)}, {0: {"w": np.zeros(2)}})
    tracker.update(1.0, nested)
    shared, deltas = tracker.best
    np.testing.assert_allclose(shared["w"], 1.0)
    np.testing.assert_allclose(deltas[0]["w"], 0.0)
    with pytest.raises(TypeError):
        tracker.update(2.0, object())


def test_split_auc_helpers_consistent(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    per_domain = [
        domain_split_auc(model, d) for d in tiny_dataset
    ]
    assert model_split_auc(model, tiny_dataset) == pytest.approx(
        float(np.mean(per_domain))
    )


def test_space_split_auc_uses_combined(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    space = DomainParameterSpace(model, tiny_dataset.n_domains)
    baseline = space_split_auc(model, tiny_dataset, space)
    assert 0.0 <= baseline <= 1.0
    # destroying domain 0's delta only changes domain 0's contribution
    space.set_delta(0, state_scale(space.shared, -1.0))  # Θ_0 becomes zero
    ruined = space_split_auc(model, tiny_dataset, space)
    assert ruined != baseline


def test_per_domain_tracker_selects_independently(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    space = DomainParameterSpace(model, tiny_dataset.n_domains)
    tracker = PerDomainTracker(tiny_dataset.n_domains)
    tracker.update_from_space(model, tiny_dataset, space)
    states = tracker.best_states()
    assert set(states) == set(range(tiny_dataset.n_domains))
    for state in states.values():
        assert state_allclose(state, space.shared)


def test_finetune_with_selection_never_worse_than_start(tiny_dataset,
                                                        fast_config):
    model = build_model("mlp", tiny_dataset, seed=0)
    domain = tiny_dataset.domain(0)
    start_auc = domain_split_auc(model, domain)
    optimizer = make_inner_optimizer(model, fast_config)
    rng = np.random.default_rng(0)
    best = finetune_with_selection(model, domain, optimizer, rng,
                                   batch_size=32, max_steps=6)
    model.load_state_dict(best)
    assert domain_split_auc(model, domain) >= start_auc
