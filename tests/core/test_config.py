"""TrainConfig validation and helpers."""

from __future__ import annotations

import pytest

from repro.core import TrainConfig


def test_defaults_valid():
    config = TrainConfig()
    assert config.epochs > 0
    assert 0 < config.outer_lr <= 1.0


@pytest.mark.parametrize("kwargs", [
    {"epochs": 0},
    {"batch_size": 0},
    {"outer_lr": 0.0},
    {"outer_lr": 1.5},
    {"dr_lr": 0.0},
    {"sample_k": -1},
])
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        TrainConfig(**kwargs)


def test_updated_returns_new_frozen_copy():
    config = TrainConfig()
    changed = config.updated(epochs=3, sample_k=7)
    assert changed.epochs == 3 and changed.sample_k == 7
    assert config.epochs != 3 or config.sample_k != 7
    with pytest.raises(Exception):
        config.epochs = 99  # frozen dataclass


def test_updated_revalidates():
    with pytest.raises(ValueError):
        TrainConfig().updated(outer_lr=2.0)


def test_joint_steps_per_epoch(tiny_dataset):
    explicit = TrainConfig(inner_steps=5)
    assert explicit.joint_steps_per_epoch(tiny_dataset) == 5

    full_pass = TrainConfig(inner_steps=None, batch_size=32)
    steps = full_pass.joint_steps_per_epoch(tiny_dataset)
    total = tiny_dataset.total_interactions("train")
    expected = max(1, round(total / (tiny_dataset.n_domains * 32)))
    assert steps == expected
    assert steps >= 1
