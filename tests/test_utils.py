"""Utilities: seeding and table formatting."""

from __future__ import annotations

import numpy as np

from repro.utils import format_table, spawn_rng, stable_seed


def test_stable_seed_deterministic_and_sensitive():
    assert stable_seed("a", 1) == stable_seed("a", 1)
    assert stable_seed("a", 1) != stable_seed("a", 2)
    assert stable_seed("a", 1) != stable_seed("b", 1)
    assert 0 <= stable_seed("x") < 2 ** 64


def test_spawn_rng_streams_independent():
    a = spawn_rng(0, "alpha")
    b = spawn_rng(0, "beta")
    a_again = spawn_rng(0, "alpha")
    draws_a = a.random(5)
    draws_b = b.random(5)
    assert not np.allclose(draws_a, draws_b)
    np.testing.assert_allclose(a_again.random(5), draws_a)


def test_format_table_alignment_and_floats():
    text = format_table(
        ["Name", "Value"],
        [["x", 0.123456], ["longer-name", 42]],
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "0.1235" in text
    assert "42" in text
    # all body lines have equal width
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1


def test_format_table_empty_rows():
    text = format_table(["A", "B"], [])
    assert "A" in text and "B" in text
