"""Planted-bug tests for the runtime autodiff sanitizer.

Each test deliberately commits one of the failure modes the fast paths
(in-place state algebra, zero-copy views, sparse grads) can produce, and
asserts the sanitizer fires with an error naming the exact op — plus
no-false-positive checks proving clean training runs are unaffected.
"""

from __future__ import annotations

import gc
from collections import OrderedDict

import numpy as np
import pytest

from repro.core import TrainConfig, live_state_view
from repro.core.negotiation import domain_negotiation_epoch
from repro.nn import (
    Parameter,
    SGD,
    Tensor,
    state_add_,
    state_allclose,
    state_scale_,
)
from repro.nn import functional as F
from repro.tooling import (
    AnomalyError,
    VersionError,
    anomaly_mode,
    densify_counts,
    graph_census,
    sanitize,
)
from repro.utils import profiling
from repro.utils.seeding import spawn_rng

from tests.conftest import make_tiny_dataset


def make_embedding_graph():
    """An embedding lookup feeding a scalar loss, weight saved for backward."""
    weight = Parameter(np.arange(12, dtype=float).reshape(6, 2) * 0.1)
    out = F.embedding(weight, np.array([0, 2, 4]))
    loss = (out * out).sum()
    return weight, loss


class TestVersionCounters:
    def test_state_add_alias_mutation_is_caught_and_names_op(self):
        with sanitize():
            weight, loss = make_embedding_graph()
            # The planted bug: mutate the saved-for-backward table through
            # a zero-copy state-dict alias between forward and backward.
            alias = OrderedDict(w=weight.data)
            state_add_(alias, OrderedDict(w=np.ones_like(weight.data)))
            with pytest.raises(VersionError) as excinfo:
                loss.backward()
        message = str(excinfo.value)
        assert "embedding" in message
        assert "in-place" in message

    def test_mutation_through_live_state_view_is_caught(self):
        model_weight = Parameter(np.ones((4, 3)))

        class OneParam:
            def named_parameters(self):
                yield ("w", model_weight)

        with sanitize():
            out = (model_weight * 2.0).sum()
            view = live_state_view(OneParam())
            assert view["w"] is model_weight.data  # genuinely zero-copy
            state_scale_(view, 0.5)
            with pytest.raises(VersionError):
                out.backward()

    def test_mutation_through_numpy_subview_is_caught(self):
        with sanitize():
            weight, loss = make_embedding_graph()
            # A strided sub-view of the parameter buffer still traces back
            # to its owner through the .base chain.
            sub = weight.data[1:]
            state_add_({"rows": sub}, {"rows": np.ones_like(sub)})
            with pytest.raises(VersionError):
                loss.backward()

    def test_optimizer_step_before_backward_is_caught(self):
        with sanitize():
            weight, loss = make_embedding_graph()
            weight.grad = np.ones_like(weight.data)
            SGD([weight], lr=0.1).step()
            with pytest.raises(VersionError):
                loss.backward()

    def test_load_state_dict_bumps_version(self):
        from repro.nn import Module

        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))

        model = M()
        with sanitize():
            loss = (model.w * model.w).sum()
            model.load_state_dict({"w": np.zeros(3)})
            with pytest.raises(VersionError):
                loss.backward()

    def test_disabled_sanitizer_does_not_raise(self):
        weight, loss = make_embedding_graph()
        alias = OrderedDict(w=weight.data)
        state_add_(alias, OrderedDict(w=np.ones_like(weight.data)))
        loss.backward()  # silent (wrong, but that is the point of the tool)
        assert weight.grad is not None

    def test_clean_backward_passes_under_sanitizer(self):
        with sanitize():
            weight, loss = make_embedding_graph()
            loss.backward()
        assert weight.grad is not None


class TestAnomalyMode:
    def test_forward_nan_names_op_and_site(self):
        with anomaly_mode(), np.errstate(invalid="ignore"):
            x = Tensor(np.array([1.0, -1.0]), requires_grad=True)
            with pytest.raises(AnomalyError) as excinfo:
                x.log()
        message = str(excinfo.value)
        assert "Tensor.log" in message
        assert "forward" in message
        assert "test_sanitizer" in message  # creation stack points here

    def test_backward_inf_names_op_and_creation_stack(self):
        with anomaly_mode(), np.errstate(divide="ignore"):
            x = Tensor(np.array([0.0, 4.0]), requires_grad=True)
            loss = x.sqrt().sum()  # forward is finite, d/dx sqrt(0) is inf
            with pytest.raises(AnomalyError) as excinfo:
                loss.backward()
        message = str(excinfo.value)
        assert "Tensor.sqrt" in message
        assert "backward" in message
        assert "created at" in message

    def test_finite_graph_is_untouched(self):
        with anomaly_mode():
            x = Tensor(np.array([1.0, 4.0]), requires_grad=True)
            loss = x.sqrt().sum()
            loss.backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.25])

    def test_off_by_default(self):
        with np.errstate(invalid="ignore"):
            x = Tensor(np.array([-1.0]), requires_grad=True)
            y = x.log()  # NaN, but no anomaly mode: no error
        assert np.isnan(y.data).all()


class TestGraphDiagnostics:
    def test_census_counts_live_nodes_then_empties(self):
        with sanitize():
            x = Tensor(np.ones(3), requires_grad=True)
            loss = (x * 2.0).sum()
            census = graph_census()
            assert census.get("Tensor.__mul__") == 1
            assert census.get("Tensor.sum") == 1
            del loss
            gc.collect()
            assert graph_census() == {}

    def test_densify_counter_and_profiling_surface(self):
        weight = Parameter(np.zeros((8, 2)))
        out = F.embedding(weight, np.array([1, 3]))
        (out * out).sum().backward()
        densify_counts(reset=True)
        with profiling.profile() as prof:
            dense = weight.grad.to_dense()
        assert dense.shape == (8, 2)
        assert densify_counts()["SparseGrad.to_dense"] == 1
        stats = prof.ops["sparse.densify"]
        assert stats.calls == 1
        assert stats.bytes_allocated == dense.nbytes


class TestNoFalsePositives:
    def test_dn_training_runs_clean_and_identically_under_sanitizer(self):
        """A full DN epoch (zero-copy views + in-place interpolation +
        sparse embedding grads) must neither trip the sanitizer nor change
        numerics."""
        from repro.models import build_model

        dataset = make_tiny_dataset("trainable", n_domains=2,
                                    samples=(60, 40))
        config = TrainConfig(batch_size=16, inner_steps=2)

        def run_epoch():
            model = build_model("mlp", dataset, seed=0)
            shared = model.state_dict()
            rng = spawn_rng(0, "sanitizer-dn")
            return domain_negotiation_epoch(model, dataset, shared, config, rng)

        plain = run_epoch()
        with sanitize(), anomaly_mode():
            guarded = run_epoch()
        assert state_allclose(plain, guarded)
