"""Static tape certification: clean tapes certify, planted bugs are
caught, and the certificate agrees with the dynamic bitwise oracle.

The planted-bug corpus mutates real compiled tapes *after* tracing — an
aliasing overwrite (two kernels sharing one output buffer), a
dtype-drifting kernel (float32 where the engine contract is float64) —
and each must produce findings under the matching rule.  The oracle
property: every statically certified tape must also pass
``replay_verified`` (the eager bitwise re-run) — certification may never
be *weaker* than the dynamic check it licenses skipping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DomainSpec, SyntheticConfig, generate_dataset, sample_batch
from repro.models import MODEL_REGISTRY, build_model
from repro.nn.compile import executor_for
from repro.nn.optim import make_optimizer
from repro.tooling import sanitizer
from repro.tooling.analyzer import certify, verify_tape
from repro.utils import profiling
from repro.utils.seeding import spawn_rng

pytestmark = pytest.mark.analyzer

ALL_MODELS = sorted(MODEL_REGISTRY)


@pytest.fixture(scope="module")
def dataset():
    specs = tuple(DomainSpec(f"C{i}", 80, 0.25 + 0.05 * i) for i in range(2))
    return generate_dataset(SyntheticConfig(
        name="analyzer", domains=specs, n_users=60, n_items=40,
        latent_dim=4, feature_mode="fixed", feature_dim=8, seed=0,
    ))


def trace(dataset, name="mlp", seed=0):
    model = build_model(name, dataset, seed=seed)
    optimizer = make_optimizer("adam", model.parameters(), 0.05)
    rng = spawn_rng(seed, "analyzer", "batch", name)
    batch = sample_batch(dataset.domain(0).train, 0, 16, rng)
    tape = executor_for(model).tape_for(batch, optimizer)
    assert tape is not None, f"{name} unexpectedly bailed out of compilation"
    return model, optimizer, batch, tape


def rules_of(findings):
    return {f.rule for f in findings}


class TestCertification:
    def test_clean_tape_certifies(self, dataset):
        _, _, _, tape = trace(dataset)
        certificate = certify(tape, name="tape:mlp")
        assert certificate.certified
        assert certificate.findings == []
        assert certificate.bail_reason == ""
        assert certificate.n_kernels == len(tape._forward_kinds)
        assert certificate.imprecise == 0

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_every_registry_model_tape_is_certified(self, dataset, name):
        """The acceptance bar: every tape the tier-1 models produce is
        statically certified (none needs a bail excuse today)."""
        _, _, _, tape = trace(dataset, name)
        certificate = certify(tape, name=f"tape:{name}")
        assert certificate.certified, certificate.bail_reason

    def test_executor_attaches_certificate_at_trace(self, dataset):
        _, _, _, tape = trace(dataset)
        assert tape.certificate is not None
        assert tape.certificate.certified
        assert tape.verify_mode == "static"

    def test_buffer_plan_is_consistent(self, dataset):
        _, _, _, tape = trace(dataset)
        findings, _, plan = verify_tape(tape)
        assert findings == []
        assert plan.n_buffers == plan.n_pinned + plan.n_ephemeral
        assert plan.arena_bytes <= plan.total_bytes
        assert plan.saved_bytes == plan.total_bytes - plan.arena_bytes
        assert len(plan.assignments) == plan.n_ephemeral
        if plan.n_ephemeral:
            assert plan.n_slots <= plan.n_ephemeral

    def test_certify_never_raises(self):
        class Broken:
            pass

        certificate = certify(Broken())
        assert not certificate.certified
        assert "verifier error" in certificate.bail_reason


class TestPlantedBugs:
    def test_aliasing_overwrite_is_caught(self, dataset):
        model, optimizer, batch, tape = trace(dataset)
        victims = [
            rec for rec in tape._node_records
            if rec.kind in ("tanh", "sigmoid", "relu", "add", "mul")
        ]
        donor = next(
            rec for rec in tape._node_records
            if rec is not victims[-1]
            and rec.out.data.shape == victims[-1].out.data.shape
        )
        # Plant: two kernels now write the same buffer — every consumer of
        # the first write reads after an in-place overwrite.
        victims[-1].out.data = donor.out.data
        findings, _, _ = verify_tape(tape, name="tape:planted-alias")
        assert "tape-alias-overwrite" in rules_of(findings)
        certificate = certify(tape)
        assert not certificate.certified
        assert "tape-alias-overwrite" in certificate.bail_reason

    def test_dtype_drift_is_caught(self, dataset):
        model, optimizer, batch, tape = trace(dataset)
        rec = next(r for r in tape._node_records if r.kind == "fused_dense")
        rec.out.data = rec.out.data.astype("float32")  # planted downcast
        findings, _, _ = verify_tape(tape, name="tape:planted-dtype")
        assert "tape-dtype-drift" in rules_of(findings)
        assert not certify(tape).certified

    def test_shape_corruption_is_caught(self, dataset):
        model, optimizer, batch, tape = trace(dataset)
        rec = next(r for r in tape._node_records if r.kind == "fused_dense")
        rec.out.data = np.zeros(rec.out.data.shape + (1,))
        findings, _, _ = verify_tape(tape, name="tape:planted-shape")
        assert rules_of(findings) & {"tape-shape", "tape-transfer"}

    def test_structure_mismatch_is_caught(self, dataset):
        model, optimizer, batch, tape = trace(dataset)
        tape._forward_kinds = list(tape._forward_kinds)[:-1]
        findings, _, plan = verify_tape(tape, name="tape:planted-structure")
        assert "tape-structure" in rules_of(findings)
        assert plan is None

    def test_uncertified_tape_stays_on_dynamic_verification(self, dataset):
        model, optimizer, batch, tape = trace(dataset)
        tape.certificate = certify(Ellipsis)  # guaranteed uncertified
        assert tape.verify_mode == "replay"
        with profiling.profile() as prof:
            with sanitizer.replay_verify(strict=False):
                executor_for(model).step(batch, optimizer)
        assert "verify.static_skip" not in prof.ops


class TestOracle:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_certified_implies_bitwise_replay_parity(self, dataset, name):
        """Property: a certificate licenses skipping the eager re-run, so
        every certified tape must pass it.  ``replay_verified`` raises on
        the first bitwise divergence of any op buffer or leaf gradient."""
        model, optimizer, batch, tape = trace(dataset, name)
        assert tape.certificate is not None and tape.certificate.certified
        rng = spawn_rng(1, "analyzer", "oracle", name)
        for _ in range(2):
            check = sample_batch(dataset.domain(0).train, 0, 16, rng)
            tape.replay_verified(check, optimizer, model)  # raises on mismatch

    def test_static_skip_matches_strict_training_bitwise(self, dataset):
        def run(strict):
            model = build_model("mlp", dataset, seed=7)
            optimizer = make_optimizer("adam", model.parameters(), 0.05)
            executor = executor_for(model)
            rng = spawn_rng(7, "analyzer", "skip")
            losses = []
            with sanitizer.replay_verify(strict=strict):
                for _ in range(4):
                    batch = sample_batch(dataset.domain(0).train, 0, 16, rng)
                    losses.append(executor.step(batch, optimizer))
            return losses, model.state_dict()

        strict_losses, strict_state = run(strict=True)
        with profiling.profile() as prof:
            fast_losses, fast_state = run(strict=False)
        assert "verify.static_skip" in prof.ops
        assert strict_losses == fast_losses
        assert strict_state.keys() == fast_state.keys()
        for key in strict_state:
            np.testing.assert_array_equal(strict_state[key], fast_state[key])

    def test_strict_default_still_catches_structure_change(self, dataset):
        model, optimizer, batch, tape = trace(dataset)
        assert tape.verify_mode == "static"
        with profiling.profile() as prof:
            with sanitizer.replay_verify():  # strict by default
                executor_for(model).step(batch, optimizer)
        assert "verify.static_skip" not in prof.ops
