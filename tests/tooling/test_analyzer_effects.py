"""Determinism/effect auditor: planted effects are detected, reachable
nondeterminism rolls up to the parallel entry points with witness
chains, and the real runtime audits clean against the committed
baseline."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.tooling.analyzer import Baseline, ProjectIndex, audit, audit_paths

pytestmark = pytest.mark.analyzer

REPO_ROOT = Path(__file__).resolve().parents[2]


def audit_sources(**sources):
    index = ProjectIndex.from_sources({
        path: textwrap.dedent(source) for path, source in sources.items()
    })
    return audit(index)


def rules_of(findings):
    return {f.rule for f in findings}


class TestDirectEffects:
    def test_wall_clock_read(self):
        findings, _ = audit_sources(**{
            "src/repro/online/timing.py": """
                import time

                def lap():
                    return time.perf_counter()
            """,
        })
        (f,) = [f for f in findings if f.rule == "wall-clock"]
        assert f.symbol == "lap"
        assert "time.perf_counter" in f.message

    def test_unseeded_global_rng(self):
        findings, _ = audit_sources(**{
            "src/repro/online/draw.py": """
                import numpy as np

                def draw():
                    return np.random.rand(3)
            """,
        })
        assert "unseeded-rng" in rules_of(findings)

    def test_set_iteration_order(self):
        findings, _ = audit_sources(**{
            "src/repro/online/order.py": """
                def visit(items):
                    pending = set(items)
                    for item in pending:
                        yield item
                    return list({1, 2, 3})
            """,
        })
        ordered = [f for f in findings if f.rule == "iteration-order"]
        assert len(ordered) == 2  # the for-loop and the list() call

    def test_sorted_set_is_not_flagged(self):
        findings, _ = audit_sources(**{
            "src/repro/online/order.py": """
                def visit(items):
                    for item in sorted(set(items)):
                        yield item
            """,
        })
        assert "iteration-order" not in rules_of(findings)

    def test_module_global_mutation(self):
        findings, _ = audit_sources(**{
            "src/repro/online/registry.py": """
                SEEN = []

                def record(x):
                    SEEN.append(x)
            """,
        })
        (f,) = [f for f in findings if f.rule == "shared-state-mutation"]
        assert "SEEN" in f.message

    def test_local_mutation_is_not_flagged(self):
        findings, _ = audit_sources(**{
            "src/repro/online/registry.py": """
                def record(xs):
                    seen = []
                    seen.append(xs)
                    return seen
            """,
        })
        assert findings == []


class TestForkCapture:
    def test_rng_captured_across_fork_boundary(self):
        """The planted bug from the issue: a closure shipped to a worker
        process captures an RNG constructed in the parent."""
        findings, stats = audit_sources(**{
            "src/repro/distributed/parallel.py": """
                import multiprocessing as mp
                import random

                def parallel_dn_epoch(domains):
                    rng = random.Random(0)

                    def _worker(domain):
                        return rng.random() * domain

                    procs = [
                        mp.Process(target=_worker, args=(d,)) for d in domains
                    ]
                    for proc in procs:
                        proc.start()
            """,
        })
        (capture,) = [f for f in findings if f.rule == "fork-unsafe-capture"]
        assert "'rng'" in capture.message
        assert capture.symbol == "parallel_dn_epoch"
        rollups = [
            f for f in findings if f.rule == "entrypoint-nondeterminism"
        ]
        assert any("fork-unsafe-capture" in f.message for f in rollups)

    def test_rng_passed_by_seed_is_clean(self):
        findings, _ = audit_sources(**{
            "src/repro/distributed/parallel.py": """
                import multiprocessing as mp

                def parallel_dn_epoch(domains, seed):
                    def _worker(domain, worker_seed):
                        return worker_seed * domain

                    procs = [
                        mp.Process(target=_worker, args=(d, seed + i))
                        for i, d in enumerate(domains)
                    ]
                    for proc in procs:
                        proc.start()
            """,
        })
        assert findings == []


class TestInterprocedural:
    SOURCES = {
        "src/repro/distributed/parallel.py": """
            from .pool import drain

            def parallel_dn_epoch(domains):
                return drain(domains)

            def parallel_dr_rounds(domains):
                return [sorted(d) for d in domains]
        """,
        "src/repro/distributed/pool.py": """
            def drain(domains):
                ready = set(domains)
                return [run(d) for d in ready]

            def run(domain):
                return domain
        """,
    }

    def test_effects_propagate_to_entry_point_with_witness_chain(self):
        findings, stats = audit_sources(**self.SOURCES)
        summary = stats["entry_points"][
            "repro.distributed.parallel.parallel_dn_epoch"
        ]
        assert summary["iteration-order"] == "parallel_dn_epoch -> drain"
        rollups = [
            f for f in findings if f.rule == "entrypoint-nondeterminism"
        ]
        assert [f.symbol for f in rollups] == ["parallel_dn_epoch"]
        assert "parallel_dn_epoch -> drain" in rollups[0].message

    def test_clean_entry_point_gets_no_rollup(self):
        _, stats = audit_sources(**self.SOURCES)
        assert stats["entry_points"][
            "repro.distributed.parallel.parallel_dr_rounds"
        ] == {}


class TestRealRuntime:
    def test_runtime_audits_clean_against_committed_baseline(self):
        """Acceptance: the determinism auditor runs clean over the actual
        parallel runtime — every finding is in analyzer_baseline.json."""
        findings, stats = audit_paths([
            REPO_ROOT / "src" / "repro" / "distributed",
            REPO_ROOT / "src" / "repro" / "online",
        ])
        baseline = Baseline.load(REPO_ROOT / "analyzer_baseline.json")
        new, known = baseline.split(findings)
        assert new == [], [f.render() for f in new]
        assert len(known) == len(findings)
        assert stats["functions"] > 50
        assert set(stats["entry_points"]) == {
            "repro.distributed.parallel.parallel_dn_epoch",
            "repro.distributed.parallel.parallel_dr_rounds",
        }

    def test_baseline_has_no_stale_entries(self):
        findings, _ = audit_paths([
            REPO_ROOT / "src" / "repro" / "distributed",
            REPO_ROOT / "src" / "repro" / "online",
        ])
        baseline = Baseline.load(REPO_ROOT / "analyzer_baseline.json")
        assert baseline.stale_entries(findings) == []
