"""Unit tests for the analyzer's shared framework: findings, baselines,
reports, and the cross-file project index."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.tooling.analyzer import (
    Baseline,
    Finding,
    ProjectIndex,
    Report,
    UsageError,
)

pytestmark = pytest.mark.analyzer


def finding(**overrides):
    base = dict(
        frontend="effects", rule="wall-clock", path="src/repro/online/sim.py",
        message="reads the wall clock", line=10, col=4, symbol="run",
    )
    base.update(overrides)
    return Finding(**base)


class TestFinding:
    def test_fingerprint_survives_line_drift(self):
        assert finding(line=10).fingerprint() == finding(line=999).fingerprint()
        assert finding(col=4).fingerprint() == finding(col=0).fingerprint()

    def test_fingerprint_distinguishes_content(self):
        assert finding().fingerprint() != finding(rule="unseeded-rng").fingerprint()
        assert finding().fingerprint() != finding(symbol="other").fingerprint()

    def test_round_trips_through_dict(self):
        original = finding()
        assert Finding.from_dict(original.to_dict()) == original

    def test_render_names_frontend_and_rule(self):
        text = finding().render()
        assert "effects/wall-clock" in text
        assert "src/repro/online/sim.py:10" in text


class TestBaseline:
    def test_split_partitions_new_and_known(self):
        baseline = Baseline.from_findings([finding()])
        new, known = baseline.split([finding(line=123), finding(rule="other")])
        assert [f.rule for f in known] == ["wall-clock"]
        assert [f.rule for f in new] == ["other"]

    def test_duplicate_fingerprints_collapse(self):
        baseline = Baseline.from_findings([finding(line=1), finding(line=2)])
        assert len(baseline.entries) == 1

    def test_stale_entries(self):
        baseline = Baseline.from_findings([finding(), finding(rule="gone")])
        stale = baseline.stale_entries([finding()])
        assert [e["rule"] for e in stale] == ["gone"]

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([finding()]).save(path)
        loaded = Baseline.load(path)
        assert finding(line=55) in loaded

    def test_missing_file_is_usage_error(self, tmp_path):
        with pytest.raises(UsageError):
            Baseline.load(tmp_path / "nope.json")

    def test_malformed_file_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"entries\": [{\"no_fingerprint\": true}]}")
        with pytest.raises(UsageError):
            Baseline.load(bad)
        bad.write_text("not json")
        with pytest.raises(UsageError):
            Baseline.load(bad)


class TestReport:
    def test_summary_counts_against_baseline(self, tmp_path):
        report = Report()
        report.extend([finding(), finding(rule="fresh")])
        report.note("effects", functions=2)
        baseline = Baseline.from_findings([finding()])
        payload = report.to_dict(baseline)
        assert payload["summary"] == {"total": 2, "new": 1, "baselined": 1}
        assert payload["frontends"]["effects"]["functions"] == 2
        out = tmp_path / "report.json"
        report.write_json(out, baseline)
        assert json.loads(out.read_text())["summary"]["new"] == 1


def make_index(**sources):
    return ProjectIndex.from_sources({
        path: textwrap.dedent(source) for path, source in sources.items()
    })


class TestProjectIndex:
    def test_one_entry_per_file_with_module_names(self):
        index = make_index(**{
            "src/repro/online/gate.py": "def check():\n    pass\n",
            "src/repro/distributed/worker.py": "def run():\n    pass\n",
        })
        assert set(index.modules) == {
            "repro.online.gate", "repro.distributed.worker",
        }
        assert index.function("repro.online.gate", "check") is not None

    def test_methods_get_class_qualnames(self):
        index = make_index(**{
            "src/repro/online/gate.py": """
                class Gate:
                    def check(self):
                        pass
            """,
        })
        assert index.function("repro.online.gate", "Gate.check") is not None

    def test_parse_failure_is_a_finding_not_a_crash(self):
        index = make_index(**{"src/repro/online/bad.py": "def oops(:\n"})
        assert [f.rule for f in index.parse_failures] == ["parse-error"]
        assert "src/repro/online/bad.py" not in index.entries

    def test_resolve_same_module_call(self):
        index = make_index(**{
            "src/repro/online/gate.py": """
                def helper():
                    pass

                def check():
                    helper()
            """,
        })
        caller = index.function("repro.online.gate", "check")
        call = caller.node.body[0].value
        target = index.resolve_call(caller, call.func)
        assert target.qualname == "helper"

    def test_resolve_cross_module_from_import(self):
        index = make_index(**{
            "src/repro/online/gate.py": """
                from .stream import ingest

                def check():
                    ingest()
            """,
            "src/repro/online/stream.py": "def ingest():\n    pass\n",
        })
        caller = index.function("repro.online.gate", "check")
        call = caller.node.body[0].value
        target = index.resolve_call(caller, call.func)
        assert (target.module, target.qualname) == ("repro.online.stream", "ingest")

    def test_resolve_module_attribute_call(self):
        index = make_index(**{
            "src/repro/online/gate.py": """
                from repro.online import stream

                def check():
                    stream.ingest()
            """,
            "src/repro/online/stream.py": "def ingest():\n    pass\n",
        })
        caller = index.function("repro.online.gate", "check")
        call = caller.node.body[0].value
        target = index.resolve_call(caller, call.func)
        assert (target.module, target.qualname) == ("repro.online.stream", "ingest")

    def test_resolve_self_method_call(self):
        index = make_index(**{
            "src/repro/online/gate.py": """
                class Gate:
                    def helper(self):
                        pass

                    def check(self):
                        self.helper()
            """,
        })
        caller = index.function("repro.online.gate", "Gate.check")
        call = caller.node.body[0].value
        target = index.resolve_call(caller, call.func)
        assert target.qualname == "Gate.helper"

    def test_unresolvable_call_returns_none(self):
        index = make_index(**{
            "src/repro/online/gate.py": """
                import os

                def check():
                    os.getpid()
            """,
        })
        caller = index.function("repro.online.gate", "check")
        call = caller.node.body[0].value
        assert index.resolve_call(caller, call.func) is None
