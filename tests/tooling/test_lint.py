"""Unit tests for the repo-invariant AST lint pass.

Each rule is exercised against small fixture snippets — one violating and
one clean — plus waiver handling, the cross-file gradcheck-coverage rule
over a synthetic repo tree, and the whole-repo invariant that
``python -m repro.tooling.lint src/`` exits 0.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.tooling.lint import all_rules, lint_paths, lint_source, main

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def rules_fired(source, path="repro/somewhere/module.py"):
    return sorted({v.rule for v in lint_source(textwrap.dedent(source), path)})


class TestRawRandom:
    def test_flags_np_random_calls(self):
        assert rules_fired("""
            import numpy as np
            rng = np.random.default_rng(0)
        """) == ["raw-random"]

    def test_flags_numpy_random_attribute(self):
        assert rules_fired("""
            import numpy
            x = numpy.random.rand(3)
        """) == ["raw-random"]

    def test_flags_import_from_numpy_random(self):
        assert rules_fired("""
            from numpy.random import default_rng
        """) == ["raw-random"]

    def test_flags_stdlib_random_import(self):
        assert rules_fired("""
            import random
            x = random.random()
        """) == ["raw-random"]

    def test_flags_import_from_stdlib_random(self):
        assert rules_fired("""
            from random import choice
        """) == ["raw-random"]

    def test_flags_stdlib_random_attribute(self):
        # Even without the import in this snippet, attribute access on a
        # name called ``random`` is flagged — chaos replay depends on every
        # random draw flowing through a seeded generator.
        assert rules_fired("""
            x = random.uniform(0, 1)
        """) == ["raw-random"]

    def test_sanctioned_in_seeding_module(self):
        source = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert lint_source(source, "src/repro/utils/seeding.py") == []

    def test_stdlib_random_sanctioned_in_seeding_module(self):
        source = "import random\nrandom.seed(0)\n"
        assert lint_source(source, "src/repro/utils/seeding.py") == []

    def test_clean_spawn_rng_usage(self):
        assert rules_fired("""
            from repro.utils.seeding import spawn_rng
            rng = spawn_rng(0, "init")
        """) == []


class TestDtypeDrift:
    def test_flags_astype_float32_in_nn(self):
        assert rules_fired("""
            import numpy as np
            def f(x):
                return x.astype(np.float32)
        """, path="src/repro/nn/foo.py") == ["dtype-drift"]

    def test_flags_dtype_keyword_string(self):
        assert rules_fired("""
            import numpy as np
            x = np.zeros(3, dtype="float32")
        """, path="src/repro/nn/foo.py") == ["dtype-drift"]

    def test_float64_and_int64_allowed(self):
        assert rules_fired("""
            import numpy as np
            a = x.astype(np.float64, copy=False)
            b = np.asarray(i, dtype=np.int64)
        """, path="src/repro/nn/foo.py") == []

    def test_out_of_scope_outside_nn(self):
        assert rules_fired("""
            import numpy as np
            x = np.zeros(3, dtype=np.float32)
        """, path="src/repro/data/foo.py") == []

    def test_flags_downcast_in_serving_and_online(self):
        # Both bit-parity-guaranteeing subsystems are in scope: a single
        # float32 downcast breaks serving == offline forward exactness.
        source = """
            import numpy as np
            x = np.zeros(3, dtype=np.float32)
        """
        assert rules_fired(source,
                           path="src/repro/serving/foo.py") == ["dtype-drift"]
        assert rules_fired(source,
                           path="src/repro/online/foo.py") == ["dtype-drift"]

    def test_dynamic_dtype_variable_allowed(self):
        # sparse.py's __array__(dtype=None) pattern: a variable, not a literal
        assert rules_fired("""
            def __array__(self, dtype=None):
                return dense.astype(dtype)
        """, path="src/repro/nn/foo.py") == []

    def test_flags_downcast_in_columnar_data_plane(self):
        # The columnar store and its bench are in scope: ad-hoc float32
        # literals outside the sanctioned np.dtype(...) constants are
        # exactly the silent-downcast drift the rule exists to stop.
        source = """
            import numpy as np
            x = np.zeros(3, dtype=np.float32)
        """
        assert rules_fired(
            source, path="src/repro/data/columnar.py") == ["dtype-drift"]
        assert rules_fired(
            source, path="src/repro/data/databench.py") == ["dtype-drift"]

    def test_sanctioned_dtype_constants_clean_in_columnar(self):
        # The single declaration points: positional np.dtype(np.float32)
        # (not an astype literal, not a dtype= keyword) stays clean.
        assert rules_fired("""
            import numpy as np
            LABEL_DTYPE = np.dtype(np.float32)
            x = values.astype(LABEL_DTYPE)
        """, path="src/repro/data/columnar.py") == []


class TestRowIteration:
    def test_flags_for_loop_over_column(self):
        assert rules_fired("""
            def f(table):
                total = 0
                for user in table.users:
                    total += user
                return total
        """, path="src/repro/data/foo.py") == ["row-iteration"]

    def test_flags_zip_over_columns(self):
        assert rules_fired("""
            def f(table, clicked):
                return [(u, i) in clicked
                        for u, i in zip(table.users, table.items)]
        """, path="src/repro/data/foo.py") == ["row-iteration"]

    def test_flags_enumerate_over_labels(self):
        assert rules_fired("""
            def f(table):
                for row, label in enumerate(table.labels):
                    print(row, label)
        """, path="src/repro/data/foo.py") == ["row-iteration"]

    def test_sanctioned_in_io(self):
        source = """
            def save(table):
                for u, i in zip(table.users, table.items):
                    write(u, i)
        """
        assert rules_fired(source, path="src/repro/data/io.py") == []

    def test_out_of_scope_outside_data(self):
        assert rules_fired("""
            def f(table):
                for user in table.users:
                    print(user)
        """, path="src/repro/core/foo.py") == []

    def test_clean_vectorized_and_domain_iteration(self):
        # Vectorized column math and iteration over *domains* (a handful
        # of objects, not 1e8 rows) are both fine.
        assert rules_fired("""
            import numpy as np
            def f(dataset, table):
                total = float(table.labels.sum(dtype=np.float64))
                for domain in dataset.domains:
                    total += len(domain.train)
                return total
        """, path="src/repro/data/foo.py") == []


class TestDataMutation:
    def test_flags_augassign_outside_engine(self):
        assert rules_fired("""
            param.data -= lr * grad
        """, path="src/repro/frameworks/foo.py") == ["data-mutation"]

    def test_flags_subscript_assignment(self):
        assert rules_fired("""
            param.data[rows] = values
        """, path="src/repro/frameworks/foo.py") == ["data-mutation"]

    def test_flags_rebinding(self):
        assert rules_fired("""
            param.data = values.copy()
        """, path="src/repro/frameworks/foo.py") == ["data-mutation"]

    def test_sanctioned_in_optimizer(self):
        source = "param.data -= lr * grad\n"
        assert lint_source(source, "src/repro/nn/optim.py") == []

    def test_reading_data_is_fine(self):
        assert rules_fired("""
            value = param.data[rows] * 2
        """, path="src/repro/frameworks/foo.py") == []


class TestDenseMaterialization:
    def test_flags_to_dense_outside_sparse_paths(self):
        assert rules_fired("""
            dense = grad.to_dense()
        """, path="src/repro/frameworks/foo.py") == ["dense-grad-materialization"]

    def test_flags_np_add_at(self):
        assert rules_fired("""
            import numpy as np
            np.add.at(buf, idx, g)
        """, path="src/repro/frameworks/foo.py") == ["dense-grad-materialization"]

    def test_sanctioned_in_sparse_module(self):
        source = "dense = grad.to_dense()\n"
        assert lint_source(source, "src/repro/nn/sparse.py") == []


class TestEagerInnerLoop:
    EAGER_STEP = """
        def train_epoch(model, batches, optimizer):
            for batch in batches:
                loss = model.loss(batch)
                model.zero_grad()
                loss.backward()
                optimizer.step()
    """

    def test_flags_eager_step_in_core(self):
        assert rules_fired(
            self.EAGER_STEP, path="src/repro/core/foo.py"
        ) == ["eager-inner-loop"]

    def test_flags_eager_step_in_distributed(self):
        assert rules_fired(
            self.EAGER_STEP, path="src/repro/distributed/foo.py"
        ) == ["eager-inner-loop"]

    def test_out_of_scope_in_frameworks(self):
        assert rules_fired(
            self.EAGER_STEP, path="src/repro/frameworks/foo.py"
        ) == []

    def test_gradient_probe_without_step_is_fine(self):
        assert rules_fired("""
            def compute_loss_gradient(model, batch):
                loss = model.loss(batch)
                model.zero_grad()
                loss.backward()
                return loss.item()
        """, path="src/repro/core/foo.py") == []

    def test_executor_routed_step_is_fine(self):
        assert rules_fired("""
            def train_epoch(model, batches, optimizer, executor):
                for batch in batches:
                    executor.step(batch, optimizer)
        """, path="src/repro/core/foo.py") == []

    def test_waived_fallback(self):
        source = textwrap.dedent("""
            def train_epoch(model, batches, optimizer):
                for batch in batches:
                    # lint: allow[eager-inner-loop]
                    loss = model.loss(batch)
                    loss.backward()
                    optimizer.step()
        """)
        assert lint_source(source, "src/repro/core/foo.py") == []


class TestWaivers:
    def test_same_line_waiver(self):
        source = "dense = grad.to_dense()  # lint: allow[dense-grad-materialization]\n"
        assert lint_source(source, "src/repro/frameworks/foo.py") == []

    def test_preceding_line_waiver(self):
        source = (
            "# lint: allow[dense-grad-materialization]\n"
            "dense = grad.to_dense()\n"
        )
        assert lint_source(source, "src/repro/frameworks/foo.py") == []

    def test_waiver_for_other_rule_does_not_apply(self):
        source = "dense = grad.to_dense()  # lint: allow[raw-random]\n"
        assert [v.rule for v in lint_source(
            source, "src/repro/frameworks/foo.py"
        )] == ["dense-grad-materialization"]


class TestServingScope:
    """The serving subsystem is inside the repo-invariant perimeter."""

    def test_dtype_drift_fires_in_serving(self):
        # serve-path downcasts would break bit-parity with offline scoring
        assert rules_fired("""
            import numpy as np
            rows = table.astype(np.float32)
        """, path="src/repro/serving/embedding_cache.py") == ["dtype-drift"]

    def test_dtype_drift_clean_float64_in_serving(self):
        assert rules_fired("""
            import numpy as np
            rows = np.asarray(rows, dtype=np.float64)
        """, path="src/repro/serving/service.py") == []

    def test_raw_random_fires_in_serving(self):
        assert rules_fired("""
            import numpy as np
            stream = np.random.default_rng(0)
        """, path="src/repro/serving/bench.py") == ["raw-random"]

    def test_dense_materialization_fires_in_serving(self):
        assert rules_fired("""
            dense = grad.to_dense()
        """, path="src/repro/serving/service.py") == [
            "dense-grad-materialization"
        ]


class TestGradcheckCoverage:
    def make_tree(self, tmp_path, test_body):
        functional = tmp_path / "src" / "repro" / "nn" / "functional.py"
        functional.parent.mkdir(parents=True)
        functional.write_text(textwrap.dedent("""
            from .tensor import Tensor

            def covered(x):
                return Tensor._make(x.data, (x,), lambda g: (g,))

            def uncovered(x):
                return Tensor._make(x.data, (x,), lambda g: (g,))

            def not_a_primitive(x):
                return covered(x)
        """))
        tests = tmp_path / "tests" / "nn" / "test_gradcheck.py"
        tests.parent.mkdir(parents=True)
        tests.write_text(textwrap.dedent(test_body))
        return tmp_path

    def test_uncovered_primitive_is_flagged(self, tmp_path):
        root = self.make_tree(tmp_path, """
            def test_covered():
                check(lambda t: covered(t), x)
        """)
        violations, _ = lint_paths([root / "src"])
        assert [v.rule for v in violations] == ["gradcheck-coverage"]
        assert "uncovered" in violations[0].message

    def test_full_coverage_passes(self, tmp_path):
        root = self.make_tree(tmp_path, """
            import functional as F
            def test_all():
                check(lambda t: F.covered(t), x)
                check(lambda t: F.uncovered(t), x)
        """)
        violations, _ = lint_paths([root / "src"])
        assert violations == []


class TestDriver:
    def test_repo_src_is_clean(self):
        violations, files_checked = lint_paths([REPO_ROOT / "src"])
        assert violations == []
        assert files_checked > 50

    def test_main_exit_codes(self, tmp_path, capsys):
        assert main([str(REPO_ROOT / "src")]) == 0
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nrng = np.random.default_rng(0)\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "raw-random" in out

    def test_parse_error_is_reported(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        violations, _ = lint_paths([broken])
        assert [v.rule for v in violations] == ["parse-error"]

    def test_select_restricts_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nrng = np.random.default_rng(0)\n")
        violations, _ = lint_paths([bad], select={"dtype-drift"})
        assert violations == []

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.name in out


class TestStaleWaivers:
    BAD = "import numpy as np\nrng = np.random.default_rng(0)  # lint: allow[raw-random]\n"

    def test_used_waiver_is_not_flagged(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(self.BAD)
        violations, _ = lint_paths([path])
        assert violations == []

    def test_stale_waiver_is_flagged_with_fix_instruction(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1  # lint: allow[raw-random]\n")
        violations, _ = lint_paths([path])
        (stale,) = violations
        assert stale.rule == "stale-waiver"
        assert stale.line == 1
        assert "delete the comment" in stale.message

    def test_waiver_for_unknown_rule_is_stale(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1  # lint: allow[no-such-rule]\n")
        violations, _ = lint_paths([path])
        assert [v.rule for v in violations] == ["stale-waiver"]

    def test_docstring_mention_is_not_a_waiver(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text('"""Use ``# lint: allow[raw-random]`` to waive."""\n')
        violations, _ = lint_paths([path])
        assert violations == []

    def test_unselected_rule_waiver_is_not_judged(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(self.BAD)
        violations, _ = lint_paths([path], select={"dtype-drift", "stale-waiver"})
        assert violations == []

    def test_stale_audit_can_itself_be_ignored(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1  # lint: allow[raw-random]\n")
        violations, _ = lint_paths([path], ignore={"stale-waiver"})
        assert violations == []

    def test_main_lists_stale_waivers_for_fixing(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("x = 1  # lint: allow[raw-random]\n")
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "stale waivers" in out
        assert f"{path}:1" in out


class TestExitCodes:
    BAD = "import numpy as np\nrng = np.random.default_rng(0)\n"

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_name_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text("x = 1\n")
        assert main([str(path), "--select", "no-such-rule"]) == 2
        assert main([str(path), "--ignore", "no-such-rule"]) == 2

    def test_ignore_silences_findings(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text(self.BAD)
        assert main([str(path), "--ignore", "raw-random"]) == 0

    def test_json_report_is_written(self, tmp_path):
        import json

        path = tmp_path / "bad.py"
        path.write_text(self.BAD)
        out = tmp_path / "report.json"
        assert main([str(path), "--json", str(out)]) == 1
        payload = json.loads(out.read_text())
        assert payload["summary"]["total"] == 1
        assert payload["summary"]["new"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "raw-random"

    def test_baseline_gates_only_new_findings(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(self.BAD)
        baseline = tmp_path / "baseline.json"
        assert main([str(path), "--write-baseline", str(baseline)]) == 0
        assert main([str(path), "--baseline", str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out
        # A new *distinct* finding must gate (same-fingerprint repeats of
        # a baselined finding are tolerated by design).
        path.write_text(self.BAD + "import random\nalso = random.random()\n")
        assert main([str(path), "--baseline", str(baseline)]) == 1

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text("x = 1\n")
        assert main([str(path), "--baseline", str(tmp_path / "nope.json")]) == 2


class TestThetaDictAccess:
    def test_flags_deltas_dict_access(self):
        assert rules_fired("""
            def worst_domain(space):
                return max(space.deltas, key=lambda d: space.deltas[d])
        """, path="src/repro/core/mamdr.py") == ["theta-dict-access"]

    def test_flags_theta_i_attribute(self):
        assert rules_fired("""
            def peek(store, domain):
                return store.theta_i[domain]
        """, path="src/repro/serving/snapshots.py") == ["theta-dict-access"]

    def test_method_calls_named_deltas_pass(self):
        # .deltas() as a *call* is someone else's API, not dict access
        assert rules_fired("""
            def report(cache):
                return cache.deltas()
        """, path="src/repro/online/trainer.py") == []

    def test_sanctioned_inside_param_space(self):
        source = "def peek(space):\n    return space.deltas\n"
        assert lint_source(source, "src/repro/core/param_space.py") == []

    def test_protocol_usage_passes(self):
        assert rules_fired("""
            def train(space):
                for group in space.groups():
                    delta = space.group_delta(group)
                    space.apply_delta(group, delta)
        """, path="src/repro/core/mamdr.py") == []
