"""AUC correctness against a direct definition and scipy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.metrics import auc_score, mean_domain_auc


def reference_auc(labels, scores):
    """Direct O(n^2) definition with 0.5 credit for ties."""
    pos = scores[labels > 0.5]
    neg = scores[labels <= 0.5]
    wins = 0.0
    for p in pos:
        wins += (p > neg).sum() + 0.5 * (p == neg).sum()
    return wins / (len(pos) * len(neg))


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(4, 60),
    seed=st.integers(0, 10_000),
    ties=st.booleans(),
)
def test_auc_matches_reference(n, seed, ties):
    rng = np.random.default_rng(seed)
    labels = np.zeros(n)
    labels[: max(1, n // 3)] = 1.0
    rng.shuffle(labels)
    scores = rng.normal(size=n)
    if ties:
        scores = np.round(scores)  # force plenty of ties
    assert auc_score(labels, scores) == pytest.approx(
        reference_auc(labels, scores)
    )


def test_auc_matches_mannwhitney():
    rng = np.random.default_rng(1)
    labels = (rng.random(300) > 0.6).astype(float)
    scores = rng.normal(size=300) + labels
    u_stat, _ = stats.mannwhitneyu(scores[labels > 0.5], scores[labels <= 0.5])
    expected = u_stat / ((labels > 0.5).sum() * (labels <= 0.5).sum())
    assert auc_score(labels, scores) == pytest.approx(expected)


def test_auc_extremes():
    labels = np.array([1.0, 1.0, 0.0, 0.0])
    assert auc_score(labels, np.array([4.0, 3.0, 2.0, 1.0])) == 1.0
    assert auc_score(labels, np.array([1.0, 2.0, 3.0, 4.0])) == 0.0
    assert auc_score(labels, np.zeros(4)) == 0.5


def test_auc_invariant_to_monotone_transform():
    rng = np.random.default_rng(2)
    labels = (rng.random(100) > 0.5).astype(float)
    scores = rng.normal(size=100)
    base = auc_score(labels, scores)
    assert auc_score(labels, 3 * scores + 7) == pytest.approx(base)
    assert auc_score(labels, np.tanh(scores)) == pytest.approx(base)


def test_auc_error_cases():
    with pytest.raises(ValueError):
        auc_score(np.ones(5), np.zeros(5))
    with pytest.raises(ValueError):
        auc_score(np.zeros(5), np.zeros(5))
    with pytest.raises(ValueError):
        auc_score(np.ones(3), np.zeros(4))


def test_mean_domain_auc_accepts_dict_and_list():
    assert mean_domain_auc({"a": 0.6, "b": 0.8}) == pytest.approx(0.7)
    assert mean_domain_auc([0.6, 0.8]) == pytest.approx(0.7)
    with pytest.raises(ValueError):
        mean_domain_auc({})
