"""Evaluation reports."""

from __future__ import annotations

import pytest

from repro.frameworks import SingleModelBank
from repro.metrics import EvaluationReport, evaluate_bank
from repro.models import build_model


def test_report_fields(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    report = evaluate_bank(SingleModelBank(model), tiny_dataset,
                           method="probe")
    assert report.method == "probe"
    assert report.dataset_name == tiny_dataset.name
    assert set(report.per_domain) == {d.name for d in tiny_dataset.domains}
    assert 0.0 <= report.mean_auc <= 1.0
    assert "probe" in repr(report)


def test_report_split_selection(tiny_dataset):
    model = build_model("mlp", tiny_dataset, seed=0)
    val = evaluate_bank(SingleModelBank(model), tiny_dataset, split="val")
    train = evaluate_bank(SingleModelBank(model), tiny_dataset, split="train")
    # different splits -> generally different numbers (same model)
    assert val.per_domain != train.per_domain or val.mean_auc == train.mean_auc


def test_report_mean_consistency():
    report = EvaluationReport("m", "d", {"a": 0.6, "b": 0.8})
    assert report.mean_auc == pytest.approx(0.7)
