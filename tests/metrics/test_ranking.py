"""The average-RANK metric of Table V."""

from __future__ import annotations

import pytest

from repro.metrics import average_rank


def test_basic_ranks():
    data = {
        "good": {"d1": 0.9, "d2": 0.9},
        "mid": {"d1": 0.7, "d2": 0.7},
        "bad": {"d1": 0.5, "d2": 0.5},
    }
    ranks = average_rank(data)
    assert ranks == {"good": 1.0, "mid": 2.0, "bad": 3.0}


def test_mixed_ranks_average():
    data = {
        "a": {"d1": 0.9, "d2": 0.1},
        "b": {"d1": 0.1, "d2": 0.9},
    }
    ranks = average_rank(data)
    assert ranks["a"] == pytest.approx(1.5)
    assert ranks["b"] == pytest.approx(1.5)


def test_ties_get_midranks():
    data = {
        "a": {"d1": 0.8},
        "b": {"d1": 0.8},
        "c": {"d1": 0.2},
    }
    ranks = average_rank(data)
    assert ranks["a"] == pytest.approx(1.5)
    assert ranks["b"] == pytest.approx(1.5)
    assert ranks["c"] == pytest.approx(3.0)


def test_rank_sum_invariant():
    """Ranks over m methods always sum to m(m+1)/2 per domain."""
    data = {
        "a": {"d1": 0.3, "d2": 0.6, "d3": 0.6},
        "b": {"d1": 0.9, "d2": 0.6, "d3": 0.1},
        "c": {"d1": 0.3, "d2": 0.2, "d3": 0.9},
        "d": {"d1": 0.5, "d2": 0.8, "d3": 0.9},
    }
    ranks = average_rank(data)
    assert sum(ranks.values()) == pytest.approx(4 * 5 / 2)


def test_domain_mismatch_rejected():
    with pytest.raises(ValueError):
        average_rank({"a": {"d1": 0.5}, "b": {"d2": 0.5}})
    with pytest.raises(ValueError):
        average_rank({})
