"""Group AUC semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import auc_score, gauc_score


def test_single_user_equals_auc():
    rng = np.random.default_rng(0)
    labels = (rng.random(50) > 0.5).astype(float)
    scores = rng.normal(size=50) + labels
    users = np.zeros(50, dtype=int)
    assert gauc_score(users, labels, scores) == pytest.approx(
        auc_score(labels, scores)
    )


def test_weighted_average_over_users():
    users = np.array([0] * 4 + [1] * 2)
    labels = np.array([1.0, 0.0, 1.0, 0.0, 1.0, 0.0])
    scores = np.array([2.0, 1.0, 3.0, 0.0, 0.0, 1.0])
    # user 0: perfect ranking (AUC 1); user 1: inverted (AUC 0)
    expected = (4 * 1.0 + 2 * 0.0) / 6
    assert gauc_score(users, labels, scores) == pytest.approx(expected)


def test_single_class_users_skipped():
    users = np.array([0, 0, 1, 1])
    labels = np.array([1.0, 1.0, 1.0, 0.0])  # user 0 all-positive
    scores = np.array([0.1, 0.9, 0.8, 0.2])
    assert gauc_score(users, labels, scores) == pytest.approx(1.0)


def test_no_valid_user_raises():
    with pytest.raises(ValueError):
        gauc_score(np.array([0, 1]), np.array([1.0, 0.0]), np.array([0.5, 0.5]))


def test_misaligned_inputs_rejected():
    with pytest.raises(ValueError):
        gauc_score(np.zeros(3), np.zeros(2), np.zeros(3))


def test_unsorted_user_ids_grouped_correctly():
    users = np.array([5, 1, 5, 1])
    labels = np.array([1.0, 0.0, 0.0, 1.0])
    scores = np.array([0.9, 0.1, 0.2, 0.8])
    # both users rank their positive above their negative -> GAUC 1
    assert gauc_score(users, labels, scores) == pytest.approx(1.0)
