"""Dataset statistics tables (Tables I-IV rendering)."""

from __future__ import annotations

from repro.data import (
    overall_stats_row,
    overall_stats_table,
    per_domain_stats_table,
)
from tests.conftest import make_tiny_dataset


def test_overall_row_consistency():
    ds = make_tiny_dataset()
    row = overall_stats_row(ds)
    assert row["Dataset"] == ds.name
    assert row["#Train"] == ds.total_interactions("train")
    assert row["#Val"] == ds.total_interactions("val")
    assert row["#Test"] == ds.total_interactions("test")


def test_overall_table_contains_all_datasets():
    a = make_tiny_dataset(seed=1)
    b = make_tiny_dataset(seed=2, feature_mode="fixed")
    text = overall_stats_table([a, b])
    assert a.name in text and b.name in text
    assert "#Domain" in text


def test_per_domain_table_shares_sum_to_100():
    ds = make_tiny_dataset()
    text = per_domain_stats_table(ds)
    shares = [
        float(line.split("|")[2].strip().rstrip("%"))
        for line in text.splitlines()[3:]
    ]
    assert abs(sum(shares) - 100.0) < 0.2
    for domain in ds.domains:
        assert domain.name in text
