"""Synthetic dataset generator invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DomainSpec, SyntheticConfig, generate_dataset
from repro.data.synthetic import _domain_transform


def config(**overrides):
    base = dict(
        name="gen_test",
        domains=(DomainSpec("A", 300, 0.25), DomainSpec("B", 150, 0.4)),
        n_users=120,
        n_items=80,
        latent_dim=8,
        seed=5,
    )
    base.update(overrides)
    return SyntheticConfig(**base)


def test_spec_validation():
    with pytest.raises(ValueError):
        DomainSpec("x", 5, 0.3)
    with pytest.raises(ValueError):
        DomainSpec("x", 100, 1.5)
    with pytest.raises(ValueError):
        SyntheticConfig(name="x", domains=())
    with pytest.raises(ValueError):
        config(conflict=1.5)
    with pytest.raises(ValueError):
        config(feature_mode="learned")


def test_generated_sizes_and_ratios():
    ds = generate_dataset(config())
    assert ds.n_domains == 2
    for domain, spec_samples, spec_ratio in zip(ds.domains, (300, 150), (0.25, 0.4)):
        assert domain.num_samples == spec_samples
        assert domain.ctr_ratio == pytest.approx(spec_ratio, abs=0.05)


def test_user_item_ids_within_universe():
    ds = generate_dataset(config())
    for domain in ds:
        for split in (domain.train, domain.val, domain.test):
            assert split.users.max() < 120 and split.users.min() >= 0
            assert split.items.max() < 80 and split.items.min() >= 0


def test_determinism_under_seed():
    a = generate_dataset(config())
    b = generate_dataset(config())
    for da, db in zip(a.domains, b.domains):
        np.testing.assert_array_equal(da.train.users, db.train.users)
        np.testing.assert_array_equal(da.train.items, db.train.items)
        np.testing.assert_array_equal(da.train.labels, db.train.labels)


def test_seed_changes_data():
    a = generate_dataset(config())
    b = generate_dataset(config(seed=6))
    assert not np.array_equal(a.domains[0].train.users, b.domains[0].train.users)


def test_fixed_features_shapes_and_mode():
    ds = generate_dataset(config(feature_mode="fixed", feature_dim=12))
    assert ds.has_fixed_features
    assert ds.user_features.shape == (120, 12)
    assert ds.item_features.shape == (80, 12)
    trainable = generate_dataset(config())
    assert trainable.user_features is None


def test_no_positive_pair_duplicated_as_negative():
    ds = generate_dataset(config())
    for domain in ds:
        table = domain.train
        positives = {
            (u, i) for u, i, y in zip(table.users, table.items, table.labels)
            if y > 0.5
        }
        negatives = {
            (u, i) for u, i, y in zip(table.users, table.items, table.labels)
            if y <= 0.5
        }
        # a (u, i) clicked anywhere in the domain is never also a negative
        assert not (positives & negatives)


def test_domain_transform_limits():
    rng = np.random.default_rng(0)
    identity = _domain_transform(rng, 6, 0.0)
    np.testing.assert_array_equal(identity, np.eye(6))
    rotation = _domain_transform(rng, 6, 1.0)
    # pure rotation: orthogonal
    np.testing.assert_allclose(rotation @ rotation.T, np.eye(6), atol=1e-10)


def test_conflict_zero_gives_identical_preferences():
    """With conflict 0 and no domain popularity, domains share one Bayes
    predictor — the control case for the conflict machinery."""
    ds = generate_dataset(config(conflict=0.0, domain_popularity_strength=0.0))
    assert ds.n_domains == 2  # generation succeeds; semantics checked in analysis tests
