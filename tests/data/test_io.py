"""CSV interaction-log round trips."""

from __future__ import annotations

import pytest

from repro.data import load_interactions_csv, save_interactions_csv
from tests.conftest import make_tiny_dataset


def test_round_trip_preserves_everything(tmp_path):
    dataset = make_tiny_dataset(seed=3)
    path = tmp_path / "interactions.csv"
    save_interactions_csv(path, dataset)
    loaded = load_interactions_csv(path, name="reloaded")

    assert loaded.n_domains == dataset.n_domains
    for original, reloaded in zip(dataset.domains, loaded.domains):
        assert original.name == reloaded.name
        for split in ("train", "val", "test"):
            a = getattr(original, split)
            b = getattr(reloaded, split)
            assert sorted(zip(a.users, a.items, a.labels)) == sorted(
                zip(b.users, b.items, b.labels)
            )


def test_loaded_dataset_is_trainable(tmp_path, fast_config):
    from repro.core import MAMDR
    from repro.metrics import evaluate_bank
    from repro.models import build_model

    dataset = make_tiny_dataset(seed=4)
    path = tmp_path / "interactions.csv"
    save_interactions_csv(path, dataset)
    loaded = load_interactions_csv(path)

    model = build_model("mlp", loaded, seed=0)
    bank = MAMDR().fit(model, loaded, fast_config, seed=0)
    report = evaluate_bank(bank, loaded)
    assert len(report.per_domain) == loaded.n_domains


def test_id_universe_inference(tmp_path):
    dataset = make_tiny_dataset(seed=5)
    path = tmp_path / "x.csv"
    save_interactions_csv(path, dataset)
    loaded = load_interactions_csv(path)
    max_user = max(
        int(getattr(d, s).users.max())
        for d in dataset for s in ("train", "val", "test")
    )
    assert loaded.n_users == max_user + 1
    explicit = load_interactions_csv(path, n_users=500, n_items=400)
    assert explicit.n_users == 500 and explicit.n_items == 400


def test_bad_inputs_rejected(tmp_path):
    bad_header = tmp_path / "bad.csv"
    bad_header.write_text("a,b,c\n1,2,3\n")
    with pytest.raises(ValueError):
        load_interactions_csv(bad_header)

    empty = tmp_path / "empty.csv"
    empty.write_text("domain,user,item,label,split\n")
    with pytest.raises(ValueError):
        load_interactions_csv(empty)

    bad_split = tmp_path / "split.csv"
    bad_split.write_text("domain,user,item,label,split\nA,1,2,1,dev\n")
    with pytest.raises(ValueError):
        load_interactions_csv(bad_split)

    missing_split = tmp_path / "missing.csv"
    missing_split.write_text(
        "domain,user,item,label,split\n"
        "A,1,2,1,train\nA,1,3,0,train\nA,2,2,1,val\nA,2,3,0,val\n"
    )
    with pytest.raises(ValueError):
        load_interactions_csv(missing_split)


def test_single_class_split_rejected(tmp_path):
    path = tmp_path / "oneclass.csv"
    rows = ["domain,user,item,label,split"]
    for split in ("train", "val", "test"):
        rows.append(f"A,1,2,1,{split}")
        rows.append(f"A,1,3,1,{split}")  # no negatives anywhere
    path.write_text("\n".join(rows) + "\n")
    with pytest.raises(ValueError):
        load_interactions_csv(path)


def test_fractional_labels_survive_round_trip(tmp_path):
    """Labels are written as ``repr(float(...))`` — graded relevance and
    propensity-weighted labels must come back bit-exact, not truncated to
    int (the old writer turned 0.75 into 0)."""
    import numpy as np

    from repro.data.schema import Domain, InteractionTable, MultiDomainDataset

    def table(labels):
        labels = np.asarray(labels, dtype=np.float64)
        n = len(labels)
        return InteractionTable(
            np.arange(n, dtype=np.int64),
            np.arange(n, dtype=np.int64) % 7,
            labels,
        )

    labels = [0.75, 0.1, 1.0, 0.0, 1 / 3, 0.9999999999999999]
    domain = Domain(
        name="graded", index=0,
        train=table(labels), val=table(labels[:4]), test=table(labels[:4]),
    )
    dataset = MultiDomainDataset("graded-ds", [domain], n_users=10, n_items=7)

    path = tmp_path / "graded.csv"
    save_interactions_csv(path, dataset)
    loaded = load_interactions_csv(path)

    for split in ("train", "val", "test"):
        original = getattr(dataset.domains[0], split)
        reloaded = getattr(loaded.domains[0], split)
        assert sorted(zip(original.users, original.items, original.labels)) \
            == sorted(zip(reloaded.users, reloaded.items, reloaded.labels))
