"""Hypothesis property tests on the synthetic dataset generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import DomainSpec, SyntheticConfig, generate_dataset

spec_strategy = st.tuples(
    st.integers(60, 400),            # n_samples
    st.floats(0.15, 0.6),            # ctr ratio
)


@settings(max_examples=15, deadline=None)
@given(
    specs=st.lists(spec_strategy, min_size=1, max_size=4),
    conflict=st.floats(0.0, 1.0),
    seed=st.integers(0, 500),
    fixed=st.booleans(),
)
def test_generator_invariants(specs, conflict, seed, fixed):
    """For any recipe: sizes honored, splits stratified, ids in range,
    features consistent with the mode."""
    config = SyntheticConfig(
        name="prop",
        domains=tuple(
            DomainSpec(f"P{i}", n, round(r, 2))
            for i, (n, r) in enumerate(specs)
        ),
        n_users=150,
        n_items=100,
        latent_dim=6,
        conflict=conflict,
        feature_mode="fixed" if fixed else "trainable",
        feature_dim=8,
        seed=seed,
    )
    dataset = generate_dataset(config)
    assert dataset.n_domains == len(specs)
    for domain, (n, ratio) in zip(dataset.domains, specs):
        assert domain.num_samples == n
        assert domain.ctr_ratio == pytest.approx(ratio, abs=0.1)
        for split_name in ("train", "val", "test"):
            split = getattr(domain, split_name)
            assert split.num_positive >= 1
            assert split.num_negative >= 1
            assert split.users.min() >= 0 and split.users.max() < 150
            assert split.items.min() >= 0 and split.items.max() < 100
    if fixed:
        assert dataset.user_features.shape == (150, 8)
        assert np.isfinite(dataset.user_features).all()
    else:
        assert dataset.user_features is None


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 200))
def test_generator_is_a_pure_function_of_config(seed):
    config = SyntheticConfig(
        name="pure",
        domains=(DomainSpec("A", 120, 0.3),),
        n_users=80, n_items=60, latent_dim=6, seed=seed,
    )
    a = generate_dataset(config)
    b = generate_dataset(config)
    ta, tb = a.domains[0].train, b.domains[0].train
    np.testing.assert_array_equal(ta.users, tb.users)
    np.testing.assert_array_equal(ta.items, tb.items)
    np.testing.assert_array_equal(ta.labels, tb.labels)
