"""Stratified splitting invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import InteractionTable, split_table


def make_table(n_pos, n_neg, seed=0):
    rng = np.random.default_rng(seed)
    return InteractionTable.from_pairs(
        (rng.integers(0, 50, n_pos), rng.integers(0, 50, n_pos)),
        (rng.integers(0, 50, n_neg), rng.integers(0, 50, n_neg)),
    )


@settings(max_examples=40, deadline=None)
@given(
    n_pos=st.integers(3, 200),
    n_neg=st.integers(3, 400),
    seed=st.integers(0, 1000),
)
def test_split_properties(n_pos, n_neg, seed):
    """Property: splits are disjoint, exhaustive and every split keeps both
    classes."""
    table = make_table(n_pos, n_neg, seed)
    rng = np.random.default_rng(seed)
    train, val, test = split_table(table, rng)
    assert len(train) + len(val) + len(test) == len(table)
    for part in (train, val, test):
        assert part.num_positive >= 1
        assert part.num_negative >= 1
    # exhaustive partition as multisets of rows
    def rows(t):
        return sorted(zip(t.users.tolist(), t.items.tolist(), t.labels.tolist()))
    assert rows(InteractionTable.concatenate([train, val, test])) == rows(table)


def test_split_fractions_respected():
    table = make_table(300, 700)
    train, val, test = split_table(table, np.random.default_rng(0),
                                   train_frac=0.7, val_frac=0.15)
    assert len(train) / len(table) == pytest.approx(0.7, abs=0.02)
    assert len(val) / len(table) == pytest.approx(0.15, abs=0.02)


def test_split_rejects_too_few_per_class():
    table = make_table(2, 100)
    with pytest.raises(ValueError):
        split_table(table, np.random.default_rng(0))


def test_split_rejects_bad_fractions():
    table = make_table(10, 10)
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        split_table(table, rng, train_frac=0.9, val_frac=0.2)
    with pytest.raises(ValueError):
        split_table(table, rng, train_frac=0.0, val_frac=0.1)


def test_split_deterministic_under_seed():
    table = make_table(50, 100)
    a = split_table(table, np.random.default_rng(42))
    b = split_table(table, np.random.default_rng(42))
    for part_a, part_b in zip(a, b):
        np.testing.assert_array_equal(part_a.users, part_b.users)
        np.testing.assert_array_equal(part_a.items, part_b.items)


# ----------------------------------------------------------------------
# Temporal split (the online holdout)
# ----------------------------------------------------------------------
def make_timed_table(n, seed=0):
    rng = np.random.default_rng(seed)
    from repro.data import InteractionTable as Table
    table = Table(
        rng.integers(0, 50, n), rng.integers(0, 50, n),
        rng.integers(0, 2, n).astype(np.float64),
    )
    return table, np.arange(100, 100 + n)


def test_temporal_split_never_shuffles():
    from repro.data import temporal_split

    table, times = make_timed_table(40)
    train, holdout, cutoff = temporal_split(table, times, holdout_frac=0.25)
    assert len(train) == 30 and len(holdout) == 10
    np.testing.assert_array_equal(train.users, table.users[:30])
    np.testing.assert_array_equal(holdout.users, table.users[30:])
    assert cutoff == times[29]


def test_temporal_split_orders_unsorted_input_by_time():
    from repro.data import InteractionTable as Table
    from repro.data import temporal_split

    # users double as row ids: row i carries time 100 + i, rows scrambled.
    n = 20
    scrambled = np.random.default_rng(3).permutation(n)
    table = Table(scrambled, scrambled, np.zeros(n))
    train, holdout, cutoff = temporal_split(
        table, 100 + scrambled, holdout_frac=0.25
    )
    # both outputs come back in time order...
    np.testing.assert_array_equal(train.users, np.arange(15))
    np.testing.assert_array_equal(holdout.users, np.arange(15, n))
    # ...and every holdout row is later than every training row.
    assert cutoff == 100 + 14


def test_temporal_split_watermark_pins_cutoff():
    from repro.data import temporal_split

    table, times = make_timed_table(30)
    train, holdout, cutoff = temporal_split(table, times, watermark=112)
    assert cutoff == 112
    assert len(train) == 13          # times 100..112 inclusive
    np.testing.assert_array_equal(train.users, table.users[:13])
    np.testing.assert_array_equal(holdout.users, table.users[13:])


def test_temporal_split_validation():
    from repro.data import InteractionTable as Table
    from repro.data import temporal_split

    table, times = make_timed_table(10)
    with pytest.raises(ValueError, match="align"):
        temporal_split(table, times[:-1])
    with pytest.raises(ValueError, match="empty"):
        temporal_split(Table.concatenate([]), np.array([]))
    with pytest.raises(ValueError, match="holdout_frac"):
        temporal_split(table, times, holdout_frac=1.0)


def test_temporal_split_single_row_trains():
    from repro.data import temporal_split

    table, times = make_timed_table(1)
    train, holdout, cutoff = temporal_split(table, times)
    assert len(train) == 1 and len(holdout) == 0
    assert cutoff == times[0]
