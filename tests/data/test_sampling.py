"""Negative sampling, CTR counts and click simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import sampling as S


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(10, 5000),
    ratio=st.floats(0.05, 0.95),
)
def test_pos_neg_counts_property(n, ratio):
    """Counts sum to n, both positive, and honor the ratio within rounding."""
    n_pos, n_neg = S.pos_neg_counts(n, ratio)
    assert n_pos + n_neg == n
    assert n_pos >= 1 and n_neg >= 1
    if n > 100:
        assert n_pos / n_neg == pytest.approx(ratio, rel=0.15)


def test_pos_neg_counts_rejects_bad_input():
    with pytest.raises(ValueError):
        S.pos_neg_counts(1, 0.3)
    with pytest.raises(ValueError):
        S.pos_neg_counts(100, 0.0)


def test_positive_sampling_prefers_high_affinity():
    rng = np.random.default_rng(0)
    pool_users = np.arange(50)
    pool_items = np.arange(40)
    # items with higher index have higher affinity
    users, items = S.sample_positive_pairs(
        rng, pool_users, pool_items,
        lambda u, i: i.astype(float), 500, candidates=10, temperature=0.1,
    )
    assert len(users) == len(items) == 500
    random_mean = pool_items.mean()
    assert items.mean() > random_mean + 5


def test_positive_sampling_requires_positive_count():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        S.sample_positive_pairs(rng, np.arange(5), np.arange(5),
                                lambda u, i: np.zeros(len(u)), 0)


def test_negative_sampling_avoids_clicked_pairs():
    rng = np.random.default_rng(1)
    users_pool = np.arange(10)
    items_pool = np.arange(10)
    clicked = {(u, i) for u in range(10) for i in range(5)}  # half forbidden
    users, items = S.sample_negative_pairs(rng, users_pool, items_pool,
                                           clicked, 200)
    assert len(users) == 200
    assert all((u, i) not in clicked for u, i in zip(users, items))


def test_negative_sampling_fails_when_everything_clicked():
    rng = np.random.default_rng(2)
    pool = np.arange(3)
    clicked = {(u, i) for u in range(3) for i in range(3)}
    with pytest.raises(RuntimeError):
        S.sample_negative_pairs(rng, pool, pool, clicked, 5, max_rounds=5)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100))
def test_negative_sampling_stays_in_pool(seed):
    rng = np.random.default_rng(seed)
    users_pool = np.array([3, 7, 11])
    items_pool = np.array([2, 5])
    users, items = S.sample_negative_pairs(rng, users_pool, items_pool,
                                           set(), 50)
    assert set(users).issubset(set(users_pool.tolist()))
    assert set(items).issubset(set(items_pool.tolist()))


def _set_based_negatives(rng, user_pool, item_pool, clicked, n_neg,
                         max_rounds=50):
    """The pre-vectorization rejection loop, kept verbatim as the parity
    reference for the searchsorted filter."""
    users = np.empty(n_neg, dtype=np.int64)
    items = np.empty(n_neg, dtype=np.int64)
    filled = 0
    for _ in range(max_rounds):
        need = n_neg - filled
        if need == 0:
            break
        cand_u = rng.choice(user_pool, size=need)
        cand_i = rng.choice(item_pool, size=need)
        keep = np.fromiter(
            ((u, i) not in clicked for u, i in zip(cand_u, cand_i)),
            dtype=bool,
            count=need,
        )
        kept = int(keep.sum())
        users[filled:filled + kept] = cand_u[keep]
        items[filled:filled + kept] = cand_i[keep]
        filled += kept
    if filled < n_neg:
        raise RuntimeError("reference sampler could not fill the request")
    return users, items


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_packed_rejection_filter_matches_set_path(seed):
    """Membership consumes no RNG, so for the same generator state the
    vectorized searchsorted filter must reproduce the legacy set-based
    output bit for bit — for both clicked input forms."""
    pool_rng = np.random.default_rng(seed)
    users_pool = np.arange(30)
    items_pool = np.arange(20)
    clicked = {
        (int(u), int(i))
        for u, i in zip(pool_rng.integers(0, 30, 80),
                        pool_rng.integers(0, 20, 80))
    }
    expected = _set_based_negatives(
        np.random.default_rng(seed), users_pool, items_pool, clicked, 150)

    got_set = S.sample_negative_pairs(
        np.random.default_rng(seed), users_pool, items_pool, clicked, 150)
    packed = S.pack_pairs(
        np.array([u for u, _ in clicked]), np.array([i for _, i in clicked]))
    got_packed = S.sample_negative_pairs(
        np.random.default_rng(seed), users_pool, items_pool, packed, 150)

    for got in (got_set, got_packed):
        assert np.array_equal(got[0], expected[0])
        assert np.array_equal(got[1], expected[1])


def test_pack_pairs_sorted_unique_and_range_checked():
    keys = S.pack_pairs(np.array([2, 1, 2, 0]), np.array([3, 5, 3, 9]))
    assert keys.dtype == np.uint64
    assert np.array_equal(keys, np.unique(keys))          # sorted, deduped
    assert len(keys) == 3                                 # (2,3) collapsed
    with pytest.raises(ValueError, match=r"\[0, 2\^32\)"):
        S.pack_pairs(np.array([-1]), np.array([0]))
    with pytest.raises(ValueError, match=r"\[0, 2\^32\)"):
        S.pack_pairs(np.array([1 << 32]), np.array([0]))


def test_prepacked_clicked_must_be_uint64():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError, match="uint64"):
        S.sample_negative_pairs(rng, np.arange(5), np.arange(5),
                                np.array([1, 2, 3]), 4)


def test_oversized_ids_fall_back_to_set_path():
    """Ids ≥ 2^32 cannot pack into one key; the sampler must silently use
    the exact set-based filter instead of mis-packing."""
    big = 1 << 40
    users_pool = np.array([big, big + 1])
    items_pool = np.array([0, 1])
    clicked = {(big, 0), (big, 1)}  # user `big` clicked everything
    users, items = S.sample_negative_pairs(
        np.random.default_rng(3), users_pool, items_pool, clicked, 40)
    assert len(users) == 40
    assert all((int(u), int(i)) not in clicked
               for u, i in zip(users, items))
    assert set(users.tolist()) == {big + 1}
