"""Negative sampling, CTR counts and click simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import sampling as S


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(10, 5000),
    ratio=st.floats(0.05, 0.95),
)
def test_pos_neg_counts_property(n, ratio):
    """Counts sum to n, both positive, and honor the ratio within rounding."""
    n_pos, n_neg = S.pos_neg_counts(n, ratio)
    assert n_pos + n_neg == n
    assert n_pos >= 1 and n_neg >= 1
    if n > 100:
        assert n_pos / n_neg == pytest.approx(ratio, rel=0.15)


def test_pos_neg_counts_rejects_bad_input():
    with pytest.raises(ValueError):
        S.pos_neg_counts(1, 0.3)
    with pytest.raises(ValueError):
        S.pos_neg_counts(100, 0.0)


def test_positive_sampling_prefers_high_affinity():
    rng = np.random.default_rng(0)
    pool_users = np.arange(50)
    pool_items = np.arange(40)
    # items with higher index have higher affinity
    users, items = S.sample_positive_pairs(
        rng, pool_users, pool_items,
        lambda u, i: i.astype(float), 500, candidates=10, temperature=0.1,
    )
    assert len(users) == len(items) == 500
    random_mean = pool_items.mean()
    assert items.mean() > random_mean + 5


def test_positive_sampling_requires_positive_count():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        S.sample_positive_pairs(rng, np.arange(5), np.arange(5),
                                lambda u, i: np.zeros(len(u)), 0)


def test_negative_sampling_avoids_clicked_pairs():
    rng = np.random.default_rng(1)
    users_pool = np.arange(10)
    items_pool = np.arange(10)
    clicked = {(u, i) for u in range(10) for i in range(5)}  # half forbidden
    users, items = S.sample_negative_pairs(rng, users_pool, items_pool,
                                           clicked, 200)
    assert len(users) == 200
    assert all((u, i) not in clicked for u, i in zip(users, items))


def test_negative_sampling_fails_when_everything_clicked():
    rng = np.random.default_rng(2)
    pool = np.arange(3)
    clicked = {(u, i) for u in range(3) for i in range(3)}
    with pytest.raises(RuntimeError):
        S.sample_negative_pairs(rng, pool, pool, clicked, 5, max_rounds=5)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100))
def test_negative_sampling_stays_in_pool(seed):
    rng = np.random.default_rng(seed)
    users_pool = np.array([3, 7, 11])
    items_pool = np.array([2, 5])
    users, items = S.sample_negative_pairs(rng, users_pool, items_pool,
                                           set(), 50)
    assert set(users).issubset(set(users_pool.tolist()))
    assert set(items).issubset(set(items_pool.tolist()))
