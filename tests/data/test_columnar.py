"""Columnar data plane: binary format, backends, and view-op parity.

Three layers of guarantees:

* **format** — checksummed preamble/header round trips; corruption,
  truncation, bad magic and future versions are rejected at the right
  time (open for structure, ``verify_checksums`` for payload bytes);
* **backend parity** — for every registry preset, the dataset rebuilt
  from a memory-mapped file is element-equal to the legacy in-RAM one
  (the bitwise-parity acceptance gate of the columnar subsystem);
* **view semantics** — every table operation (subset, shuffle,
  temporal_split, concatenate, minibatch iteration) applied to a
  memory-mapped view produces values element-equal to the legacy path,
  property-tested over random tables.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.batching import iter_minibatches, iter_store_batches
from repro.data.benchmarks import BENCHMARK_BUILDERS
from repro.data.columnar import (
    DATASET_COLUMNS,
    ColumnarStore,
    ColumnarWriter,
    Extent,
    RamInteractionStore,
    dataset_from_store,
    open_dataset,
    write_dataset,
)
from repro.data.schema import InteractionTable
from repro.data.splits import temporal_split
from repro.nn.serialization import SerializationError
from repro.utils.seeding import spawn_rng

from tests.conftest import make_tiny_dataset

pytestmark = pytest.mark.data


def tables_equal(a, b):
    """Element equality regardless of storage dtype (uint32 vs int64)."""
    return (
        np.array_equal(a.users, b.users)
        and np.array_equal(a.items, b.items)
        and np.array_equal(a.labels, b.labels)
    )


@pytest.fixture(scope="module")
def tiny():
    return make_tiny_dataset("trainable")


@pytest.fixture()
def mapped(tiny, tmp_path):
    """The tiny dataset, round-tripped through a columnar file."""
    path = tmp_path / "tiny.col"
    write_dataset(path, tiny)
    dataset = open_dataset(path)
    yield dataset
    try:
        dataset.close()
    except BufferError:
        pass


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------
class TestFormat:
    def test_round_trip_and_o1_open(self, tiny, tmp_path):
        path = tmp_path / "ds.col"
        write_dataset(path, tiny)
        dataset = open_dataset(path, verify=True)
        assert dataset.backend == "mmap"
        assert dataset.name == tiny.name
        assert dataset.n_users == tiny.n_users
        assert dataset.n_items == tiny.n_items
        assert len(dataset) == len(tiny)
        dataset.close()

    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.col"
        path.write_bytes(b"NOTACOL!" + b"\x00" * 100)
        with pytest.raises(SerializationError, match="bad magic"):
            ColumnarStore.open(path)

    def test_rejects_tiny_file(self, tmp_path):
        path = tmp_path / "tiny.col"
        path.write_bytes(b"RP")
        with pytest.raises(SerializationError, match="smaller than"):
            ColumnarStore.open(path)

    def test_rejects_truncation(self, tiny, tmp_path):
        path = tmp_path / "trunc.col"
        write_dataset(path, tiny)
        data = path.read_bytes()
        path.write_bytes(data[:-16])
        with pytest.raises(SerializationError, match="truncated"):
            ColumnarStore.open(path)

    def test_rejects_corrupted_header(self, tiny, tmp_path):
        path = tmp_path / "hdr.col"
        write_dataset(path, tiny)
        data = bytearray(path.read_bytes())
        data[-8] ^= 0xFF          # inside the JSON header at the tail
        path.write_bytes(bytes(data))
        with pytest.raises(SerializationError, match="header failed"):
            ColumnarStore.open(path)

    def test_detects_payload_corruption_on_verify(self, tiny, tmp_path):
        path = tmp_path / "bitrot.col"
        write_dataset(path, tiny)
        data = bytearray(path.read_bytes())
        data[200] ^= 0x01         # one payload bit
        path.write_bytes(bytes(data))
        # Structure is intact, so the O(1) open succeeds ...
        store = ColumnarStore.open(path)
        # ... and the streamed audit pins the corruption.
        with pytest.raises(SerializationError, match="chunk 0 failed"):
            store.verify_checksums()
        store.close()

    def test_rejects_future_version(self, tiny, tmp_path, monkeypatch):
        import repro.data.columnar as columnar

        path = tmp_path / "future.col"
        monkeypatch.setattr(columnar, "COLUMNAR_FORMAT_VERSION", 99)
        write_dataset(path, tiny)
        monkeypatch.undo()
        with pytest.raises(SerializationError, match="version 99"):
            ColumnarStore.open(path)

    def test_close_refuses_under_live_views(self, mapped):
        view = mapped.store.column("users")
        with pytest.raises(BufferError):
            mapped.close()
        assert len(view) == mapped.store.rows  # still valid, not unmapped

    def test_release_keeps_views_valid(self, mapped):
        before = np.asarray(mapped.store.column("users")).copy()
        mapped.release()
        assert np.array_equal(mapped.store.column("users"), before)


class TestWriter:
    def test_append_requires_extent(self, tmp_path):
        with ColumnarWriter(tmp_path / "w.col", DATASET_COLUMNS) as writer:
            with pytest.raises(ValueError, match="new_extent"):
                writer.append(users=[1], items=[2], labels=[1.0])
            writer.new_extent(domain="D", index=0, split="train")
            writer.append(users=[1], items=[2], labels=[1.0])

    def test_rejects_ragged_append(self, tmp_path):
        with ColumnarWriter(tmp_path / "w.col", DATASET_COLUMNS) as writer:
            writer.new_extent(index=0, split="train")
            with pytest.raises(ValueError, match="ragged"):
                writer.append(users=[1, 2], items=[3], labels=[1.0])
            writer.append(users=[1], items=[3], labels=[1.0])

    def test_rejects_wrong_columns(self, tmp_path):
        with ColumnarWriter(tmp_path / "w.col", DATASET_COLUMNS) as writer:
            writer.new_extent(index=0, split="train")
            with pytest.raises(ValueError, match="exactly columns"):
                writer.append(users=[1], items=[2])
            writer.append(users=[1], items=[2], labels=[0.0])

    def test_rejects_negative_and_oversized_ids(self, tmp_path):
        with ColumnarWriter(tmp_path / "w.col", DATASET_COLUMNS) as writer:
            writer.new_extent(index=0, split="train")
            with pytest.raises(ValueError, match="negative"):
                writer.append(users=[-1], items=[0], labels=[0.0])
            with pytest.raises(ValueError, match="uint32"):
                writer.append(users=[1 << 33], items=[0], labels=[0.0])
            writer.append(users=[0], items=[0], labels=[0.0])

    def test_abort_on_error_leaves_no_files(self, tmp_path):
        path = tmp_path / "broken.col"
        with pytest.raises(RuntimeError, match="boom"):
            with ColumnarWriter(path, DATASET_COLUMNS) as writer:
                writer.new_extent(index=0, split="train")
                writer.append(users=[1], items=[2], labels=[1.0])
                raise RuntimeError("boom")
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []  # spill dir cleaned up

    def test_finalize_twice_rejected(self, tmp_path):
        writer = ColumnarWriter(tmp_path / "w.col", DATASET_COLUMNS)
        writer.new_extent(index=0, split="train")
        writer.append(users=[1], items=[2], labels=[1.0])
        writer.finalize()
        with pytest.raises(ValueError, match="finalized"):
            writer.finalize()


class TestStoreProtocol:
    def test_extents_must_tile_in_order(self):
        columns = {"users": np.zeros(4, dtype=np.uint32)}
        with pytest.raises(ValueError, match="tile"):
            RamInteractionStore(columns, [Extent(1, 4, {})])
        with pytest.raises(ValueError, match="covers?|cover"):
            RamInteractionStore(columns, [Extent(0, 3, {})])
        store = RamInteractionStore(
            columns, [Extent(0, 2, {}), Extent(2, 4, {})]
        )
        assert store.rows == 4

    def test_rejects_ragged_columns(self):
        with pytest.raises(ValueError, match="ragged"):
            RamInteractionStore(
                {"users": np.zeros(3, dtype=np.uint32),
                 "items": np.zeros(2, dtype=np.uint32)},
                [],
            )

    def test_ram_and_mmap_backends_agree(self, tiny, mapped):
        ram = RamInteractionStore.pack_dataset(tiny)
        assert ram.backend == "ram"
        assert mapped.store.backend == "mmap"
        assert ram.rows == mapped.store.rows
        for name in ("users", "items", "labels"):
            assert np.array_equal(ram.column(name),
                                  mapped.store.column(name))
        for left, right in zip(ram.extents, mapped.store.extents):
            assert (left.start, left.stop, left.meta) == \
                (right.start, right.stop, right.meta)

    def test_find_extents(self, mapped):
        trains = mapped.store.find_extents(split="train")
        assert len(trains) == len(mapped)
        one = mapped.store.find_extents(split="val", index=0)
        assert len(one) == 1
        assert one[0].meta["domain"] == mapped.domain(0).name

    def test_dataset_from_store_rejects_missing_split(self, tiny):
        ram = RamInteractionStore.pack_dataset(tiny, splits=("train", "val"))
        with pytest.raises(SerializationError, match="missing splits"):
            dataset_from_store(ram)

    def test_zero_copy_views(self, mapped):
        table = mapped.domain(0).train
        assert table.users.base is not None  # a view, not a copy
        batch = next(iter_store_batches(mapped.store, 8))
        assert batch.users.base is not None


# ----------------------------------------------------------------------
# Registry-preset bitwise parity (the acceptance gate)
# ----------------------------------------------------------------------
def _build_preset(name):
    builder = BENCHMARK_BUILDERS[name]
    if name == "taobao_sim":
        return builder(6, scale=0.3)
    if name == "taobao_online_sim":
        return builder(n_domains=8, total_samples=1200)
    return builder(scale=0.3)


@pytest.mark.parametrize("preset", sorted(BENCHMARK_BUILDERS))
def test_registry_preset_columnar_parity(preset, tmp_path):
    """columnar == legacy, element for element, for every preset."""
    legacy = _build_preset(preset)
    path = tmp_path / f"{preset}.col"
    write_dataset(path, legacy)
    mapped = open_dataset(path, verify=True)
    assert mapped.n_domains == legacy.n_domains
    for old, new in zip(legacy, mapped):
        assert old.name == new.name and old.index == new.index
        for split in ("train", "val", "test"):
            assert tables_equal(getattr(old, split), getattr(new, split)), \
                f"{preset}: {old.name}/{split} diverged"
    del old, new  # drop the live views so the mmap can unmap
    mapped.close()


# ----------------------------------------------------------------------
# View-op equivalence properties
# ----------------------------------------------------------------------
@st.composite
def table_data(draw):
    n = draw(st.integers(1, 60))
    seed = draw(st.integers(0, 2**20))
    rng = spawn_rng(seed, "columnar-prop")
    users = rng.integers(0, 500, size=n)
    items = rng.integers(0, 300, size=n)
    labels = (rng.random(n) < 0.4).astype(np.float64)
    return users, items, labels, seed


def _mapped_table(tmp_path, users, items, labels, tag):
    path = tmp_path / f"prop_{tag}.col"
    with ColumnarWriter(path, DATASET_COLUMNS) as writer:
        writer.new_extent(index=0, split="train")
        writer.append(users=users, items=items, labels=labels)
    store = ColumnarStore.open(path)
    return store, store.extent_table(0)


class TestViewOpEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(data=table_data())
    def test_subset_shuffle_concat_minibatch(self, data, tmp_path_factory):
        users, items, labels, seed = data
        tmp_path = tmp_path_factory.mktemp("prop")
        legacy = InteractionTable(users.copy(), items.copy(), labels.copy())
        store, view = _mapped_table(tmp_path, users, items, labels, seed)

        rng = spawn_rng(seed, "subset")
        indices = rng.integers(0, len(legacy), size=len(legacy))
        assert tables_equal(legacy.subset(indices), view.subset(indices))

        assert tables_equal(
            legacy.shuffled(spawn_rng(seed, "shuffle")),
            view.shuffled(spawn_rng(seed, "shuffle")),
        )

        assert tables_equal(
            InteractionTable.concatenate([legacy, legacy]),
            InteractionTable.concatenate([view, view]),
        )

        for old, new in zip(
            iter_minibatches(legacy, 0, 7,
                             rng=spawn_rng(seed, "batches")),
            iter_minibatches(view, 0, 7,
                             rng=spawn_rng(seed, "batches")),
        ):
            assert np.array_equal(old.users, new.users)
            assert np.array_equal(old.labels, new.labels)

        del view
        store.close()

    @settings(max_examples=25, deadline=None)
    @given(data=table_data())
    def test_temporal_split(self, data, tmp_path_factory):
        users, items, labels, seed = data
        tmp_path = tmp_path_factory.mktemp("tsplit")
        legacy = InteractionTable(users.copy(), items.copy(), labels.copy())
        store, view = _mapped_table(tmp_path, users, items, labels, seed)
        times = spawn_rng(seed, "times").integers(0, 50, size=len(legacy))

        for stamps in (times, np.sort(times)):  # general + sorted fast path
            old_train, old_hold, old_cut = temporal_split(legacy, stamps)
            new_train, new_hold, new_cut = temporal_split(view, stamps)
            assert old_cut == new_cut
            assert tables_equal(old_train, new_train)
            assert tables_equal(old_hold, new_hold)

        del view, new_train, new_hold  # sorted path returns live slices
        store.close()


def test_sorted_temporal_split_is_zero_copy(mapped):
    """On pre-sorted timestamps the split returns slice views."""
    table = mapped.domain(0).train
    times = np.arange(len(table))
    train, holdout, _ = temporal_split(table, times)
    assert train.users.base is not None
    assert holdout.users.base is not None
    assert len(train) + len(holdout) == len(table)


def test_iter_store_batches_matches_tables(mapped, tiny):
    """Extent-walking epoch iteration == per-domain unshuffled batches."""
    store_batches = list(iter_store_batches(mapped.store, 16, split="train"))
    legacy_batches = [
        batch for domain in tiny
        for batch in iter_minibatches(domain.train, domain.index, 16)
    ]
    assert len(store_batches) == len(legacy_batches)
    for new, old in zip(store_batches, legacy_batches):
        assert new.domain == old.domain
        assert np.array_equal(new.users, old.users)
        assert np.array_equal(new.items, old.items)
        assert np.array_equal(new.labels, old.labels)


def test_num_positive_exact_on_float32_columns():
    """Label counting must accumulate in float64: 2^24 + k ones summed in
    float32 stalls at 2^24 and would silently undercount positives."""
    n = (1 << 24) + 17
    labels = np.ones(n, dtype=np.float32)
    table = InteractionTable(
        np.zeros(n, dtype=np.uint32), np.zeros(n, dtype=np.uint32), labels
    )
    assert table.num_positive == n
