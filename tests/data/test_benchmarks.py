"""Benchmark presets: calibration against the paper's Tables I-IV."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    amazon6_sim,
    amazon13_sim,
    dataset_by_name,
    overall_stats_row,
    taobao10_sim,
    taobao20_sim,
    taobao30_sim,
    taobao_online_sim,
)
from repro.data.benchmarks import _AMAZON6, _AMAZON13, _TAOBAO30


@pytest.fixture(scope="module")
def small_amazon6():
    return amazon6_sim(scale=0.3)


def test_amazon6_matches_paper_structure(small_amazon6):
    ds = small_amazon6
    assert ds.n_domains == 6
    assert [d.name for d in ds.domains] == [name for name, _, _ in _AMAZON6]
    assert not ds.has_fixed_features  # Amazon uses trainable embeddings
    # CTR ratios from Table II, honored per domain
    for domain, (_, _, ctr) in zip(ds.domains, _AMAZON6):
        assert domain.ctr_ratio == pytest.approx(ctr, abs=0.06)


def test_amazon13_sparse_domains_floor():
    ds = amazon13_sim(scale=0.3)
    assert ds.n_domains == 13
    sizes = [d.num_samples for d in ds.domains]
    # sparse domains hit the floor but never vanish
    assert min(sizes) >= 40
    shares = {name: share for name, share, _ in _AMAZON13}
    biggest = max(ds.domains, key=lambda d: d.num_samples)
    assert shares[biggest.name] == max(shares.values())


def test_taobao_prefix_relationship():
    t10 = taobao10_sim(scale=0.3)
    t30 = taobao30_sim(scale=0.3)
    assert [d.name for d in t10.domains] == [d.name for d in t30.domains][:10]
    assert t10.has_fixed_features and t30.has_fixed_features


def test_taobao_ctrs_match_table4():
    ds = taobao20_sim(scale=0.5)
    for domain, (_, _, ctr) in zip(ds.domains, _TAOBAO30[:20]):
        assert domain.ctr_ratio == pytest.approx(ctr, abs=0.07)


def test_taobao_online_zipf_shape():
    ds = taobao_online_sim(n_domains=25, total_samples=8000, seed=1)
    assert ds.n_domains == 25
    sizes = np.array([d.num_samples for d in ds.domains])
    # heavy-tailed: the largest domain dominates the median by a wide margin
    assert sizes.max() > 5 * np.median(sizes)
    ratios = [d.ctr_ratio for d in ds.domains]
    assert all(0.1 < r < 0.6 for r in ratios)


def test_dataset_by_name_round_trip():
    ds = dataset_by_name("taobao10_sim", scale=0.3)
    assert ds.name == "taobao10_sim"
    with pytest.raises(ValueError):
        dataset_by_name("movielens")


def test_scale_parameter_scales_samples():
    small = amazon6_sim(scale=0.3)
    large = amazon6_sim(scale=1.0)
    assert large.total_interactions("train") > 2 * small.total_interactions("train")


def test_overall_stats_row_fields(small_amazon6):
    row = overall_stats_row(small_amazon6)
    assert row["#Domain"] == 6
    total = row["#Train"] + row["#Val"] + row["#Test"]
    assert row["Sample/Domain"] == total // 6
    assert row["#User"] > 0 and row["#Item"] > 0


# ----------------------------------------------------------------------
# The parameterized taobao_sim front door and its deprecation shims
# ----------------------------------------------------------------------
def test_taobao_sim_shims_are_bitwise_identical():
    from repro.data import taobao_sim

    for n in (10, 20):
        with pytest.warns(DeprecationWarning, match=f"taobao_sim\\({n}"):
            legacy = {10: taobao10_sim, 20: taobao20_sim}[n](
                scale=0.3, seed=2
            )
        fresh = taobao_sim(n, scale=0.3, seed=2)
        assert fresh.name == legacy.name == f"taobao{n}_sim"
        np.testing.assert_array_equal(
            fresh.item_features, legacy.item_features
        )
        for lhs, rhs in zip(fresh.domains, legacy.domains):
            for split in ("train", "val", "test"):
                a, b = getattr(lhs, split), getattr(rhs, split)
                np.testing.assert_array_equal(a.users, b.users)
                np.testing.assert_array_equal(a.items, b.items)
                np.testing.assert_array_equal(a.labels, b.labels)


def test_taobao_sim_registry_names_stay_warning_free():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        ds = dataset_by_name("taobao10_sim", scale=0.3)
    assert ds.n_domains == 10


def test_taobao_sim_extends_table_deterministically():
    from repro.data.benchmarks import _taobao_entries

    entries = _taobao_entries(35)
    assert [name for name, _, _ in entries[:30]] == \
        [name for name, _, _ in _TAOBAO30]
    tail = entries[30:]
    assert [name for name, _, _ in tail] == [f"D{i}" for i in range(31, 36)]
    shares = [share for _, share, _ in tail]
    assert shares == sorted(shares, reverse=True)       # decaying tail
    # CTRs cycle the table — pure function of the index, no RNG
    assert [ctr for _, _, ctr in tail] == \
        [_TAOBAO30[i % 30][2] for i in range(30, 35)]
    assert _taobao_entries(35) == entries


def test_taobao_sim_overrides_control_scale():
    from repro.data import taobao_sim

    ds = taobao_sim(
        40, total_samples=40 * 12, n_users=300, n_items=200,
        min_domain_samples=18, name="tiny40",
    )
    assert ds.name == "tiny40"
    assert ds.n_domains == 40
    assert ds.n_users == 300 and ds.n_items == 200
    assert min(d.num_samples for d in ds.domains) >= 18
    with pytest.raises(ValueError):
        taobao_sim(0)
