"""InteractionTable / Domain / MultiDomainDataset invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Domain, InteractionTable, MultiDomainDataset


def make_table(n_pos=4, n_neg=8):
    return InteractionTable.from_pairs(
        (np.arange(n_pos), np.arange(n_pos)),
        (np.arange(n_neg), np.arange(n_neg) + 1),
    )


def test_from_pairs_labels():
    table = make_table(3, 5)
    assert len(table) == 8
    assert table.num_positive == 3
    assert table.num_negative == 5
    assert table.ctr_ratio == pytest.approx(0.6)


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        InteractionTable(np.zeros(2, dtype=np.int64),
                         np.zeros(3, dtype=np.int64), np.zeros(2))


def test_ctr_ratio_infinite_without_negatives():
    table = InteractionTable.from_pairs(
        (np.array([1]), np.array([2])), (np.array([], dtype=int), np.array([], dtype=int))
    )
    assert table.ctr_ratio == float("inf")


def test_subset_and_shuffled_preserve_rows():
    table = make_table()
    subset = table.subset(np.array([0, 2]))
    assert len(subset) == 2
    shuffled = table.shuffled(np.random.default_rng(0))
    assert len(shuffled) == len(table)
    assert shuffled.num_positive == table.num_positive
    pairs = set(zip(table.users.tolist(), table.items.tolist(), table.labels.tolist()))
    pairs_shuffled = set(zip(shuffled.users.tolist(), shuffled.items.tolist(), shuffled.labels.tolist()))
    assert pairs == pairs_shuffled


def test_concatenate_including_empty():
    table = make_table()
    combined = InteractionTable.concatenate([table, table])
    assert len(combined) == 2 * len(table)
    empty = InteractionTable.concatenate([])
    assert len(empty) == 0


def make_domain(index=0):
    return Domain(
        name=f"D{index}", index=index,
        train=make_table(6, 10), val=make_table(2, 3), test=make_table(2, 3),
    )


def test_domain_aggregates():
    domain = make_domain()
    assert domain.num_samples == 16 + 5 + 5
    assert domain.ctr_ratio == pytest.approx(10 / 16)


def test_dataset_indexing_and_iteration():
    ds = MultiDomainDataset("toy", [make_domain(0), make_domain(1)], 20, 20)
    assert ds.n_domains == 2
    assert len(ds) == 2
    assert [d.index for d in ds] == [0, 1]
    assert ds.domain(1).name == "D1"
    assert ds.total_interactions("train") == 32
    assert ds.domain_sizes("val").tolist() == [5, 5]


def test_dataset_rejects_bad_indices():
    with pytest.raises(ValueError):
        MultiDomainDataset("toy", [make_domain(1)], 20, 20)


def test_fixed_feature_accessors():
    ds = MultiDomainDataset("toy", [make_domain(0)], 20, 20)
    assert not ds.has_fixed_features
    with pytest.raises(ValueError):
        ds.feature_dims
    ds2 = MultiDomainDataset(
        "toy2", [make_domain(0)], 20, 20,
        user_features=np.zeros((20, 5)), item_features=np.zeros((20, 7)),
    )
    assert ds2.has_fixed_features
    assert ds2.feature_dims == (5, 7)


def test_active_users_items_counts_unique():
    ds = MultiDomainDataset("toy", [make_domain(0)], 20, 20)
    assert ds.active_users() == len(np.unique(np.concatenate([
        ds.domain(0).train.users, ds.domain(0).val.users, ds.domain(0).test.users
    ])))
