"""Minibatch iteration semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import InteractionTable, full_batch, iter_minibatches, sample_batch


def make_table(n=25):
    return InteractionTable(
        np.arange(n, dtype=np.int64),
        np.arange(n, dtype=np.int64) * 2,
        (np.arange(n) % 2).astype(float),
    )


def test_batches_cover_table_once():
    table = make_table(25)
    batches = list(iter_minibatches(table, domain=3, batch_size=10))
    assert [len(b) for b in batches] == [10, 10, 5]
    assert all(b.domain == 3 for b in batches)
    seen = np.concatenate([b.users for b in batches])
    np.testing.assert_array_equal(np.sort(seen), table.users)


def test_shuffle_changes_order_not_content():
    table = make_table(30)
    rng = np.random.default_rng(0)
    batches = list(iter_minibatches(table, 0, 30, rng=rng))
    assert len(batches) == 1
    assert not np.array_equal(batches[0].users, table.users)
    np.testing.assert_array_equal(np.sort(batches[0].users), table.users)


def test_max_batches_caps_pass():
    table = make_table(100)
    batches = list(iter_minibatches(table, 0, 10, max_batches=3))
    assert len(batches) == 3


def test_bad_batch_size_rejected():
    with pytest.raises(ValueError):
        list(iter_minibatches(make_table(), 0, 0))


def test_full_batch_matches_table():
    table = make_table(7)
    batch = full_batch(table, 2)
    assert len(batch) == 7
    np.testing.assert_array_equal(batch.items, table.items)
    assert batch.domain == 2


def test_sample_batch_without_replacement():
    table = make_table(20)
    rng = np.random.default_rng(1)
    batch = sample_batch(table, 0, 10, rng)
    assert len(batch) == 10
    assert len(set(batch.users.tolist())) == 10
    # requesting more than available clips to table size
    big = sample_batch(table, 0, 500, rng)
    assert len(big) == 20


def test_sample_batch_empty_table_rejected():
    empty = InteractionTable(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), np.empty(0)
    )
    with pytest.raises(ValueError):
        sample_batch(empty, 0, 4, np.random.default_rng(0))


def test_unshuffled_batches_are_views_not_copies():
    table = make_table(10)
    batches = list(iter_minibatches(table, 0, 4, rng=None))
    assert [len(b) for b in batches] == [4, 4, 2]
    for batch in batches:
        assert np.shares_memory(batch.users, table.users)
        assert np.shares_memory(batch.items, table.items)
        assert np.shares_memory(batch.labels, table.labels)
    np.testing.assert_array_equal(
        np.concatenate([b.users for b in batches]), table.users
    )


def test_shuffled_batches_are_copies():
    table = make_table(10)
    rng = np.random.default_rng(0)
    for batch in iter_minibatches(table, 0, 4, rng=rng):
        assert not np.shares_memory(batch.users, table.users)
