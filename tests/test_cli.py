"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table5" in out and "fig9" in out
    assert "amazon6_sim" in out


def test_stats_command(capsys):
    assert main(["stats", "taobao10_sim", "--scale", "0.3"]) == 0
    out = capsys.readouterr().out
    assert "D1" in out and "CTR Ratio" in out


def test_run_requires_known_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "table99"])


def test_seed_parsing():
    parser = build_parser()
    args = parser.parse_args(["run", "fig9", "--seeds", "0,3,5"])
    assert args.seeds == (0, 3, 5)
    args = parser.parse_args(["run", "fig9"])
    assert args.seeds == (0,)


def test_run_fig9_tiny(capsys):
    """End-to-end CLI run on a deliberately tiny configuration."""
    assert main([
        "run", "fig9", "--scale", "0.25", "--seeds", "0",
    ]) == 0
    out = capsys.readouterr().out
    assert "Figure 9 analogue" in out
