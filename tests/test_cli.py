"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table5" in out and "fig9" in out
    assert "amazon6_sim" in out


def test_stats_command(capsys):
    assert main(["stats", "taobao10_sim", "--scale", "0.3"]) == 0
    out = capsys.readouterr().out
    assert "D1" in out and "CTR Ratio" in out


def test_run_requires_known_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "table99"])


def test_seed_parsing():
    parser = build_parser()
    args = parser.parse_args(["run", "fig9", "--seeds", "0,3,5"])
    assert args.seeds == (0, 3, 5)
    args = parser.parse_args(["run", "fig9"])
    assert args.seeds == (0,)


def test_run_fig9_tiny(capsys):
    """End-to-end CLI run on a deliberately tiny configuration."""
    assert main([
        "run", "fig9", "--scale", "0.25", "--seeds", "0",
    ]) == 0
    out = capsys.readouterr().out
    assert "Figure 9 analogue" in out


def test_train_requires_config():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["train"])


def test_serve_bench_accepts_config():
    parser = build_parser()
    args = parser.parse_args(["serve-bench", "--config", "session.json"])
    assert args.config == "session.json"


def test_train_command_distributed(tmp_path, capsys):
    """``train --config`` drives a chaos cluster run from one JSON file."""
    import json

    config = {
        "dataset": "taobao10_sim",
        "scale": 0.1,
        "model": "mlp",
        "seed": 0,
        "train": {"epochs": 2, "batch_size": 32, "inner_steps": 2,
                  "dr_steps": 1, "sample_k": 1, "finetune_steps": 2},
        "distributed": {
            "n_workers": 2,
            "mode": "async",
            "heartbeat_timeout": 1,
            "faults": {"seed": 3, "drop_rate": 0.05, "duplicate_rate": 0.05},
        },
    }
    path = tmp_path / "session.json"
    path.write_text(json.dumps(config))
    assert main(["train", "--config", str(path)]) == 0
    out = capsys.readouterr().out
    assert "mean AUC" in out
    assert "cluster:" in out and "ps_version=" in out
