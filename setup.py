"""Setup shim: enables offline editable installs (no `wheel` available).

Use: pip install -e . --no-build-isolation --no-use-pep517
All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
